package mixed

import (
	"errors"
	"math"
	"testing"

	"mzqos/internal/disk"
	"mzqos/internal/workload"
)

func testConfig(t testing.TB) Config {
	t.Helper()
	discrete, err := workload.GammaSizes(40*workload.KB, 30*workload.KB)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Disk:            disk.QuantumViking21(),
		RoundLength:     1,
		Reserve:         0.2,
		ContinuousSizes: workload.PaperSizes(),
		DiscreteSizes:   discrete,
		DiscreteRate:    5,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config should error")
	}
	cfg := testConfig(t)
	bad := cfg
	bad.Reserve = 1
	if _, err := New(bad); err == nil {
		t.Error("reserve=1 should error")
	}
	bad = cfg
	bad.Reserve = -0.1
	if _, err := New(bad); err == nil {
		t.Error("negative reserve should error")
	}
	bad = cfg
	bad.DiscreteRate = -1
	if _, err := New(bad); err == nil {
		t.Error("negative rate should error")
	}
	bad = cfg
	bad.DiscreteSizes = workload.SizeModel{}
	if _, err := New(bad); err == nil {
		t.Error("missing discrete sizes should error")
	}
}

func TestReserveShrinksContinuousAdmission(t *testing.T) {
	cfg := testConfig(t)
	points, err := TradeOff(cfg, []float64{0, 0.1, 0.2, 0.3, 0.5}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].ContinuousNMax != 26 {
		t.Errorf("reserve 0: N_max = %d, want 26 (pure-continuous paper value)", points[0].ContinuousNMax)
	}
	for i := 1; i < len(points); i++ {
		if points[i].ContinuousNMax > points[i-1].ContinuousNMax {
			t.Errorf("N_max not nonincreasing in reserve: %+v", points)
		}
	}
	// With half the round reserved, far fewer streams fit.
	if last := points[len(points)-1]; last.ContinuousNMax >= 20 {
		t.Errorf("reserve 0.5: N_max = %d, expected well below 20", last.ContinuousNMax)
	}
}

func TestDiscreteMomentsPositive(t *testing.T) {
	m, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	mean, variance := m.DiscreteServiceMoments()
	// ~8.5 ms random seek + 4.2 ms half rotation + ~5 ms transfer.
	if mean < 0.008 || mean > 0.04 {
		t.Errorf("discrete service mean = %v s", mean)
	}
	if !(variance > 0) {
		t.Errorf("discrete service variance = %v", variance)
	}
}

func TestDiscreteUtilizationAndCapacity(t *testing.T) {
	m, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	rho := m.DiscreteUtilization()
	mean, _ := m.DiscreteServiceMoments()
	want := 5 * mean / 0.2
	if math.Abs(rho-want) > 1e-12 {
		t.Errorf("rho = %v, want %v", rho, want)
	}
	cap := m.DiscretePerRoundCapacity()
	if math.Abs(cap-0.2/mean) > 1e-9 {
		t.Errorf("per-round capacity = %v", cap)
	}
	rate, err := m.MaxDiscreteRate(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rate-0.8*0.2/mean) > 1e-9 {
		t.Errorf("max rate = %v", rate)
	}
	if _, err := m.MaxDiscreteRate(0); err == nil {
		t.Error("zero target should error")
	}
}

func TestZeroReserveEdge(t *testing.T) {
	cfg := testConfig(t)
	cfg.Reserve = 0
	cfg.DiscreteRate = 0
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.DiscreteUtilization() != 0 {
		t.Errorf("rho with no load = %v", m.DiscreteUtilization())
	}
	resp, err := m.DiscreteResponseEstimate()
	if err != nil {
		t.Fatal(err)
	}
	mean, _ := m.DiscreteServiceMoments()
	if resp != mean {
		t.Errorf("no-load response = %v, want bare service %v", resp, mean)
	}
	cfg.DiscreteRate = 1
	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(m2.DiscreteUtilization(), 1) {
		t.Error("load with zero reserve should be unstable")
	}
	if _, err := m2.DiscreteResponseEstimate(); !errors.Is(err, ErrUnstable) {
		t.Errorf("response err = %v, want ErrUnstable", err)
	}
}

func TestReserveFor(t *testing.T) {
	cfg := testConfig(t)
	r, err := ReserveFor(cfg, 5, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !(r > 0 && r < 1) {
		t.Fatalf("reserve = %v", r)
	}
	// Check the resulting config is stable at the target.
	cfg.Reserve = r
	cfg.DiscreteRate = 5
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rho := m.DiscreteUtilization(); math.Abs(rho-0.8) > 1e-9 {
		t.Errorf("rho at computed reserve = %v, want 0.8", rho)
	}
	// Impossible rates are flagged.
	if _, err := ReserveFor(cfg, 1e6, 0.8); !errors.Is(err, ErrUnstable) {
		t.Errorf("huge rate err = %v", err)
	}
	if _, err := ReserveFor(cfg, 5, 0); err == nil {
		t.Error("zero target should error")
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(Config{}, 5, 10, 1); err == nil {
		t.Error("empty config should error")
	}
	cfg := testConfig(t)
	if _, err := Simulate(cfg, -1, 10, 1); err == nil {
		t.Error("negative n should error")
	}
	if _, err := Simulate(cfg, 5, 0, 1); err == nil {
		t.Error("zero rounds should error")
	}
}

func TestSimulateMatchesModel(t *testing.T) {
	cfg := testConfig(t)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.ContinuousNMax(0.01)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(cfg, n, 4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	// The continuous class keeps its guarantee: glitch rate below the
	// (per-round!) one-percent target with margin.
	if res.ContinuousGlitchRate > 0.01 {
		t.Errorf("continuous glitch rate = %v at admitted N=%d", res.ContinuousGlitchRate, n)
	}
	// The continuous sweep respects its budget most rounds.
	if res.ContinuousOverrunRate > 0.02 {
		t.Errorf("budget overrun rate = %v", res.ContinuousOverrunRate)
	}
	// Discrete service is live and stable.
	if res.DiscreteServed < 4000*4 { // ~5/s nominal
		t.Errorf("discrete served = %d, expected near %d", res.DiscreteServed, 4000*5)
	}
	// Simulated response within a factor of the analytic estimate.
	est, err := m.DiscreteResponseEstimate()
	if err != nil {
		t.Fatal(err)
	}
	if res.DiscreteMeanResponse > 4*est || est > 6*res.DiscreteMeanResponse {
		t.Errorf("simulated response %v vs estimate %v", res.DiscreteMeanResponse, est)
	}
	if res.DiscreteP95Response < res.DiscreteMeanResponse {
		t.Errorf("p95 %v below mean %v", res.DiscreteP95Response, res.DiscreteMeanResponse)
	}
}

func TestSimulateNoDiscreteLoad(t *testing.T) {
	cfg := testConfig(t)
	cfg.DiscreteRate = 0
	res, err := Simulate(cfg, 10, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.DiscreteServed != 0 || res.DiscreteMeanResponse != 0 {
		t.Errorf("no-load result = %+v", res)
	}
	if res.ContinuousGlitchRate > 0.001 {
		t.Errorf("glitch rate at N=10 = %v", res.ContinuousGlitchRate)
	}
}

func TestSimulateOverload(t *testing.T) {
	// Discrete arrivals far beyond the reserve: the queue backs up and
	// response times blow up relative to the stable case.
	cfg := testConfig(t)
	cfg.DiscreteRate = 100
	res, err := Simulate(cfg, 20, 800, 5)
	if err != nil {
		t.Fatal(err)
	}
	stable, err := Simulate(testConfig(t), 20, 800, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.DiscreteMeanResponse > 3*stable.DiscreteMeanResponse) {
		t.Errorf("overloaded response %v not much above stable %v",
			res.DiscreteMeanResponse, stable.DiscreteMeanResponse)
	}
	if res.DiscreteMaxQueue <= stable.DiscreteMaxQueue {
		t.Errorf("overloaded queue %d not above stable %d",
			res.DiscreteMaxQueue, stable.DiscreteMaxQueue)
	}
}
