// Package mixed extends the stochastic service model to mixed workloads:
// continuous-data streams sharing each disk with conventional "discrete"
// requests (HTML documents, images, index lookups). This is the research
// direction the paper names in §6 ("we advocate sharing disks between
// continuous and discrete data") and the setting of its predecessor
// [NMW97].
//
// The scheme reserves a fraction of every round for discrete service: the
// continuous requests are admitted against an effective round of
// (1−reserve)·t, preserving the paper's Chernoff guarantee machinery
// unchanged, and the reserved tail of each round drains a FCFS queue of
// discrete requests. Discrete response times are estimated with an
// M/G/1-with-vacations approximation (the continuous period acts as a
// server vacation once per round) and validated by the companion
// simulator in this package.
package mixed

import (
	"errors"
	"fmt"
	"math"

	"mzqos/internal/disk"
	"mzqos/internal/model"
	"mzqos/internal/telemetry"
	"mzqos/internal/workload"
)

// ErrConfig is returned for invalid mixed-workload configurations.
var ErrConfig = errors.New("mixed: invalid configuration")

// ErrUnstable is returned when the discrete load exceeds the reserved
// service capacity.
var ErrUnstable = errors.New("mixed: discrete load exceeds reserved capacity")

// Config describes one disk of a mixed-workload server.
type Config struct {
	// Disk is the drive geometry.
	Disk *disk.Geometry
	// RoundLength is the full round length t in seconds.
	RoundLength float64
	// Reserve is the fraction of each round set aside for discrete
	// service, in [0, 1).
	Reserve float64
	// ContinuousSizes is the fragment-size law of the streams.
	ContinuousSizes workload.SizeModel
	// DiscreteSizes is the request-size law of the discrete workload
	// (typically far smaller than fragments).
	DiscreteSizes workload.SizeModel
	// DiscreteRate is the Poisson arrival rate of discrete requests, in
	// requests per second.
	DiscreteRate float64
	// RoundTimes optionally receives every simulated round's continuous
	// sweep duration from Simulate — the mixed-workload counterpart of
	// the server's round-time histogram. Build it with
	// telemetry.NewRoundTimeHistogram(RoundLength) so both the full
	// deadline t and (via TailAbove) the effective budget are resolvable.
	RoundTimes *telemetry.Histogram
}

func (c Config) validate() error {
	if c.Disk == nil || !(c.RoundLength > 0) {
		return ErrConfig
	}
	if !(c.Reserve >= 0 && c.Reserve < 1) {
		return fmt.Errorf("%w: reserve must be in [0,1)", ErrConfig)
	}
	if c.ContinuousSizes.Dist == nil || c.DiscreteSizes.Dist == nil {
		return fmt.Errorf("%w: both size models are required", ErrConfig)
	}
	if !(c.DiscreteRate >= 0) {
		return fmt.Errorf("%w: negative discrete rate", ErrConfig)
	}
	return nil
}

// Model couples the continuous-service guarantee machinery with a
// discrete-response estimate.
type Model struct {
	cfg  Config
	cont *model.Model
	// per-discrete-request service moments (seek + rotation + transfer).
	dMean, dVar float64
}

// New builds the mixed model. The continuous submodel is evaluated against
// the effective round (1−reserve)·t, so every guarantee it emits holds
// even when the reserved discrete period is fully used.
func New(cfg Config) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cont, err := model.New(model.Config{
		Disk:        cfg.Disk,
		Sizes:       cfg.ContinuousSizes,
		RoundLength: cfg.RoundLength * (1 - cfg.Reserve),
	})
	if err != nil {
		return nil, err
	}
	m := &Model{cfg: cfg, cont: cont}
	if err := m.discreteServiceMoments(); err != nil {
		return nil, err
	}
	return m, nil
}

// discreteServiceMoments computes the mean and variance of one discrete
// request's service time under random (independent-seek) positioning:
// discrete requests are not part of the SCAN sweep, so each pays a random
// seek, half a rotation on average, and a zone-dependent transfer.
func (m *Model) discreteServiceMoments() error {
	sm, sv, err := m.cont.IndependentSeekMoments()
	if err != nil {
		return err
	}
	rot := m.cfg.Disk.RotationTime
	inv, inv2 := m.cfg.Disk.InvRateMoments()
	es := m.cfg.DiscreteSizes.Mean()
	es2 := m.cfg.DiscreteSizes.Var() + es*es
	tMean := es * inv
	tVar := es2*inv2 - tMean*tMean
	if tVar < 0 {
		tVar = 0
	}
	m.dMean = sm + rot/2 + tMean
	m.dVar = sv + rot*rot/12 + tVar
	return nil
}

// Continuous returns the continuous-side model (round length already
// shortened by the reserve), for guarantees and admission limits.
func (m *Model) Continuous() *model.Model { return m.cont }

// ContinuousNMax returns the admissible stream count under a per-round
// lateness threshold, honouring the reserve.
func (m *Model) ContinuousNMax(delta float64) (int, error) {
	return m.cont.NMaxLate(delta)
}

// DiscreteServiceMoments returns the per-request service-time mean and
// variance of the discrete class.
func (m *Model) DiscreteServiceMoments() (mean, variance float64) {
	return m.dMean, m.dVar
}

// DiscreteUtilization returns ρ_eff = λ·E[D] / reserve: the discrete
// service demand relative to the capacity actually reserved for it.
func (m *Model) DiscreteUtilization() float64 {
	if m.cfg.Reserve == 0 {
		if m.cfg.DiscreteRate == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return m.cfg.DiscreteRate * m.dMean / m.cfg.Reserve
}

// DiscreteResponseEstimate returns the approximate mean response time
// (waiting + service) of a discrete request under the M/G/1-with-vacations
// decomposition: the FCFS M/G/1 waiting time at effective utilization
// ρ_eff, plus the mean residual of the continuous period (the "vacation"
// of deterministic length V = (1−reserve)·t once per round, residual V/2,
// weighted by the 1−reserve fraction of time vacations occupy), plus the
// service itself:
//
//	E[R] ≈ λ_eff·E[D²] / (2(1−ρ_eff)) + (1−reserve)·V/2 + E[D]
//
// It returns ErrUnstable when ρ_eff >= 1.
func (m *Model) DiscreteResponseEstimate() (float64, error) {
	if m.cfg.DiscreteRate == 0 {
		return m.dMean, nil
	}
	rho := m.DiscreteUtilization()
	if rho >= 1 {
		return 0, ErrUnstable
	}
	// Effective arrival rate relative to the reserved capacity: the server
	// works on discrete requests only a `reserve` fraction of the time, so
	// in "discrete-server time" arrivals come at rate λ/reserve.
	lambdaEff := m.cfg.DiscreteRate / m.cfg.Reserve
	ed2 := m.dVar + m.dMean*m.dMean
	wait := lambdaEff * ed2 / (2 * (1 - rho))
	// A request arriving during the continuous period also waits out the
	// residual vacation; vacations of deterministic length V=(1−r)·t
	// occupy a (1−r) fraction of wall-clock time, with mean residual V/2.
	v := (1 - m.cfg.Reserve) * m.cfg.RoundLength
	wait += (1 - m.cfg.Reserve) * v / 2
	return wait + m.dMean, nil
}

// DiscretePerRoundCapacity returns the expected number of discrete
// requests servable in one reserved period.
func (m *Model) DiscretePerRoundCapacity() float64 {
	return m.cfg.Reserve * m.cfg.RoundLength / m.dMean
}

// MaxDiscreteRate returns the highest stable Poisson arrival rate at the
// configured reserve (ρ_eff < target, e.g. 0.8 for headroom).
func (m *Model) MaxDiscreteRate(targetUtilization float64) (float64, error) {
	if !(targetUtilization > 0 && targetUtilization < 1) {
		return 0, fmt.Errorf("%w: target utilization must be in (0,1)", ErrConfig)
	}
	return targetUtilization * m.cfg.Reserve / m.dMean, nil
}

// ReserveFor returns the smallest reserve fraction that keeps the discrete
// class stable at the given rate and utilization target, holding service
// moments fixed. Because the continuous admission shrinks with the
// reserve, callers trade N_max against discrete responsiveness; the
// TradeOff helper sweeps this.
func ReserveFor(cfg Config, rate, targetUtilization float64) (float64, error) {
	probe := cfg
	probe.Reserve = 0
	probe.DiscreteRate = rate
	m, err := New(probe)
	if err != nil {
		return 0, err
	}
	if !(targetUtilization > 0 && targetUtilization < 1) {
		return 0, fmt.Errorf("%w: target utilization must be in (0,1)", ErrConfig)
	}
	r := rate * m.dMean / targetUtilization
	if r >= 1 {
		return 0, ErrUnstable
	}
	return r, nil
}

// TradeOffPoint is one row of the reserve sweep.
type TradeOffPoint struct {
	// Reserve is the evaluated reserve fraction.
	Reserve float64
	// ContinuousNMax is the admissible stream count at delta.
	ContinuousNMax int
	// DiscreteRho is the discrete utilization at the configured rate.
	DiscreteRho float64
	// DiscreteResponse is the estimated mean response time in seconds
	// (NaN when unstable).
	DiscreteResponse float64
}

// TradeOff sweeps the reserve fraction and reports, for each point, the
// continuous admission limit and the discrete response estimate — the
// capacity-planning curve for mixed-workload servers.
func TradeOff(cfg Config, reserves []float64, delta float64) ([]TradeOffPoint, error) {
	out := make([]TradeOffPoint, 0, len(reserves))
	for _, r := range reserves {
		c := cfg
		c.Reserve = r
		m, err := New(c)
		if err != nil {
			return nil, err
		}
		nmax, err := m.ContinuousNMax(delta)
		if err != nil {
			if errors.Is(err, model.ErrOverload) {
				nmax = 0
			} else {
				return nil, err
			}
		}
		p := TradeOffPoint{
			Reserve:        r,
			ContinuousNMax: nmax,
			DiscreteRho:    m.DiscreteUtilization(),
		}
		resp, err := m.DiscreteResponseEstimate()
		if err != nil {
			p.DiscreteResponse = math.NaN()
		} else {
			p.DiscreteResponse = resp
		}
		out = append(out, p)
	}
	return out, nil
}
