package sim

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"mzqos/internal/fault"
	"mzqos/internal/trace"
)

// tracedReplay runs ReplayRounds with a fresh recorder attached and
// returns the outcomes plus the recorder's retained spans.
func tracedReplay(t *testing.T, plan *fault.Plan, rounds int, seed uint64) ([]RoundOutcome, []trace.RoundSpan) {
	t.Helper()
	cfg := faultCfg(8, plan)
	cfg.Trace = trace.NewRecorder(trace.Config{Spans: rounds, RoundLength: cfg.RoundLength})
	outs, err := ReplayRounds(cfg, rounds, seed)
	if err != nil {
		t.Fatal(err)
	}
	return outs, cfg.Trace.Live()
}

// TestReplayTraceDeterminism is the trace half of the replay determinism
// guarantee: two replays of the same seeded config must produce
// byte-identical span streams, not merely equal outcomes.
func TestReplayTraceDeterminism(t *testing.T) {
	plan := &fault.Plan{Seed: 3, Faults: []fault.Fault{
		{Kind: fault.Latency, Disk: 0, From: 5, Until: 15, Factor: 1.8},
		{Kind: fault.ReadError, Disk: 0, From: 8, Until: 20, Prob: 0.25, Retries: 1},
		{Kind: fault.Failure, Disk: 0, From: 22, Until: 25},
	}}
	_, a := tracedReplay(t, plan, 30, 11)
	_, b := tracedReplay(t, plan, 30, 11)
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Error("identical config+seed replays produced different trace streams")
	}
}

// TestReplayTraceMatchesOutcomes pins the span stream to the replay's own
// outcome report: one span per round, gap-free sequence numbers, span
// totals agreeing with the outcome, and down rounds carrying the 16·t
// sentinel with every request marked lost.
func TestReplayTraceMatchesOutcomes(t *testing.T) {
	plan := &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Latency, Disk: 0, From: 5, Until: 10, Factor: 3},
		{Kind: fault.Failure, Disk: 0, From: 12, Until: 14},
	}}
	outs, spans := tracedReplay(t, plan, 20, 1)
	if len(spans) != len(outs) {
		t.Fatalf("%d spans for %d rounds", len(spans), len(outs))
	}
	for i, sp := range spans {
		o := outs[i]
		if sp.Seq != uint64(i) || sp.Round != o.Round {
			t.Fatalf("span %d: seq=%d round=%d, want %d/%d", i, sp.Seq, sp.Round, i, o.Round)
		}
		if sp.Faulty != o.Faulty || sp.Down != o.Down {
			t.Errorf("round %d: span faulty=%v down=%v, outcome %v/%v",
				o.Round, sp.Faulty, sp.Down, o.Faulty, o.Down)
		}
		if sp.Lost != o.Lost {
			t.Errorf("round %d: span lost=%d, outcome %d", o.Round, sp.Lost, o.Lost)
		}
		if sp.Observed != o.Total {
			t.Errorf("round %d: span observed=%v, outcome total=%v", o.Round, sp.Observed, o.Total)
		}
		if sp.Down {
			if sp.Busy != 0 || len(sp.Requests) != 8 {
				t.Errorf("down round %d: busy=%v requests=%d", o.Round, sp.Busy, len(sp.Requests))
			}
			for _, ev := range sp.Requests {
				if !ev.Lost {
					t.Errorf("down round %d has a delivered request", o.Round)
				}
			}
			continue
		}
		// A served sweep's phases decompose its busy time (eq. 3.1.1),
		// and the request events chain contiguously through it.
		if math.Abs(sp.Seek+sp.Rotation+sp.Transfer-sp.Busy) > 1e-9 {
			t.Errorf("round %d: phase sum %v != busy %v",
				o.Round, sp.Seek+sp.Rotation+sp.Transfer, sp.Busy)
		}
		clock := 0.0
		for j, ev := range sp.Requests {
			if math.Abs(ev.Start-clock) > 1e-9 {
				t.Fatalf("round %d request %d: start %v, want %v", o.Round, j, ev.Start, clock)
			}
			clock = ev.End()
		}
		if math.Abs(clock-sp.Busy) > 1e-9 {
			t.Errorf("round %d: last request ends at %v, busy %v", o.Round, clock, sp.Busy)
		}
	}
}
