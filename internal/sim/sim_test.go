package sim

import (
	"math"
	"testing"

	"mzqos/internal/disk"
	"mzqos/internal/model"
	"mzqos/internal/workload"
)

func paperConfig(t testing.TB, n int) Config {
	t.Helper()
	return Config{
		Disk:        disk.QuantumViking21(),
		Sizes:       workload.PaperSizes(),
		RoundLength: 1,
		N:           n,
	}
}

func TestEstimatePLateValidation(t *testing.T) {
	if _, err := EstimatePLate(Config{}, 10, 1); err != ErrConfig {
		t.Errorf("empty config err = %v", err)
	}
	cfg := paperConfig(t, 26)
	if _, err := EstimatePLate(cfg, 0, 1); err != ErrConfig {
		t.Errorf("zero trials err = %v", err)
	}
	bad := cfg
	bad.N = 0
	if _, err := EstimatePLate(bad, 10, 1); err != ErrConfig {
		t.Errorf("N=0 err = %v", err)
	}
}

func TestRoundMomentsMatchModel(t *testing.T) {
	// The simulator's mean round time must sit below the analytic mean
	// (which carries the worst-case SEEK constant) but within a seek
	// budget of it; the standard deviations should agree closely.
	cfg := paperConfig(t, 26)
	st, err := MeasureRounds(cfg, 40000, 7)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.New(model.Config{Disk: cfg.Disk, Sizes: cfg.Sizes, RoundLength: 1})
	if err != nil {
		t.Fatal(err)
	}
	am, av, err := m.RoundMoments(26)
	if err != nil {
		t.Fatal(err)
	}
	if !(st.Mean < am) {
		t.Errorf("simulated mean %v not below analytic mean %v (SEEK is worst-case)", st.Mean, am)
	}
	if am-st.Mean > m.SeekBound(26) {
		t.Errorf("simulated mean %v too far below analytic %v", st.Mean, am)
	}
	asd := math.Sqrt(av)
	if math.Abs(st.Std-asd) > 0.15*asd {
		t.Errorf("simulated std %v vs analytic %v", st.Std, asd)
	}
}

func TestAnalyticBoundDominatesSimulation(t *testing.T) {
	// Figure 1's central claim: the analytic bound is conservative — it
	// always sits above the simulated p_late.
	m, err := model.New(model.Config{
		Disk:        disk.QuantumViking21(),
		Sizes:       workload.PaperSizes(),
		RoundLength: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{24, 26, 28, 30} {
		cfg := paperConfig(t, n)
		est, err := EstimatePLate(cfg, 30000, 11)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := m.LateBound(n)
		if err != nil {
			t.Fatal(err)
		}
		if est.Lo > bound {
			t.Errorf("N=%d: simulated p_late %v (CI lo %v) above analytic bound %v",
				n, est.P, est.Lo, bound)
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	// Simulation sustains N=28 at the 1%-lateness level (paper §4) while
	// the analytic model only admits 26: check the simulated curve is low
	// at 28 and clearly above 1% by 31.
	cfg := paperConfig(t, 28)
	e28, err := EstimatePLate(cfg, 30000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if e28.P > 0.02 {
		t.Errorf("simulated p_late(28) = %v, paper says the system sustains 28 at ≈1%%", e28.P)
	}
	cfg.N = 31
	e31, err := EstimatePLate(cfg, 30000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if e31.P < 0.02 {
		t.Errorf("simulated p_late(31) = %v, expected clearly above 1%%", e31.P)
	}
	if !(e31.P > e28.P) {
		t.Errorf("p_late not increasing: %v at 28 vs %v at 31", e28.P, e31.P)
	}
}

func TestPLateSweepMonotoneTrend(t *testing.T) {
	cfg := paperConfig(t, 1)
	ests, err := PLateSweep(cfg, 24, 30, 12000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 7 {
		t.Fatalf("sweep length = %d", len(ests))
	}
	// Endpoint comparison is statistically robust even at modest trials.
	if !(ests[len(ests)-1].P > ests[0].P) {
		t.Errorf("sweep not increasing: %v ... %v", ests[0].P, ests[len(ests)-1].P)
	}
	for _, e := range ests {
		if e.Lo > e.P || e.Hi < e.P {
			t.Errorf("Wilson interval [%v,%v] excludes estimate %v", e.Lo, e.Hi, e.P)
		}
	}
	if _, err := PLateSweep(cfg, 0, 5, 10, 1); err != ErrConfig {
		t.Errorf("invalid sweep err = %v", err)
	}
	if _, err := PLateSweep(cfg, 5, 4, 10, 1); err != ErrConfig {
		t.Errorf("reversed sweep err = %v", err)
	}
}

func TestEstimatePErrorTable2Shape(t *testing.T) {
	// Table 2 simulated column: p_error stays ~0 at N=28 and is
	// substantial at N=32 (paper: 0.454).
	cfg := paperConfig(t, 28)
	e, err := EstimatePError(cfg, 300, 3, 24, 17) // scaled-down M,g at same g/M ratio
	if err != nil {
		t.Fatal(err)
	}
	if e.P > 0.02 {
		t.Errorf("p_error(28) = %v, expected ≈0", e.P)
	}
	cfg.N = 32
	e32, err := EstimatePError(cfg, 300, 3, 24, 17)
	if err != nil {
		t.Fatal(err)
	}
	if !(e32.P > e.P) && e32.P < 0.1 {
		t.Errorf("p_error(32) = %v, expected substantial", e32.P)
	}
}

func TestEstimatePErrorValidation(t *testing.T) {
	cfg := paperConfig(t, 26)
	if _, err := EstimatePError(cfg, 0, 0, 1, 1); err != ErrConfig {
		t.Errorf("M=0 err = %v", err)
	}
	if _, err := EstimatePError(cfg, 10, 11, 1, 1); err != ErrConfig {
		t.Errorf("g>M err = %v", err)
	}
	if _, err := EstimatePError(cfg, 10, 1, 0, 1); err != ErrConfig {
		t.Errorf("runs=0 err = %v", err)
	}
}

func TestDeterministicSeeding(t *testing.T) {
	cfg := paperConfig(t, 26)
	cfg.Workers = 2
	a, err := EstimatePLate(cfg, 5000, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimatePLate(cfg, 5000, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hits != b.Hits {
		t.Errorf("same seed, different results: %d vs %d", a.Hits, b.Hits)
	}
	c, err := EstimatePLate(cfg, 5000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hits == c.Hits {
		t.Logf("different seeds produced identical hit counts (possible but unlikely)")
	}
}

func TestWorkerSplitCoversAllTrials(t *testing.T) {
	cfg := paperConfig(t, 10)
	for _, workers := range []int{1, 3, 7} {
		cfg.Workers = workers
		e, err := EstimatePLate(cfg, 1001, 5)
		if err != nil {
			t.Fatal(err)
		}
		if e.Trials != 1001 {
			t.Errorf("workers=%d: trials = %d, want 1001", workers, e.Trials)
		}
	}
}

func TestMeasureRoundsValidation(t *testing.T) {
	if _, err := MeasureRounds(Config{}, 10, 1); err != ErrConfig {
		t.Errorf("empty config err = %v", err)
	}
	cfg := paperConfig(t, 5)
	if _, err := MeasureRounds(cfg, 0, 1); err != ErrConfig {
		t.Errorf("zero trials err = %v", err)
	}
}

func TestPositionBias(t *testing.T) {
	cfg := paperConfig(t, 30)
	ests, err := PositionBias(cfg, 30000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 30 {
		t.Fatalf("positions = %d", len(ests))
	}
	// Early positions essentially never glitch; the last position is by
	// far the most exposed.
	if ests[0].P > 1e-4 {
		t.Errorf("first position glitch rate = %v", ests[0].P)
	}
	last := ests[29].P
	if !(last > 10*ests[10].P) {
		t.Errorf("last position %v not much above mid position %v", last, ests[10].P)
	}
	// Summed positional probabilities equal N·p_glitch; cross-check the
	// per-round lateness: P[round late] = P[last position late].
	plate, err := EstimatePLate(cfg, 30000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if diff := last - plate.P; diff > 0.01 || diff < -0.01 {
		t.Errorf("last-position rate %v vs p_late %v", last, plate.P)
	}
}

func TestPositionBiasValidation(t *testing.T) {
	if _, err := PositionBias(Config{}, 10, 1); err != ErrConfig {
		t.Errorf("empty config err = %v", err)
	}
	cfg := paperConfig(t, 5)
	if _, err := PositionBias(cfg, 0, 1); err != ErrConfig {
		t.Errorf("zero trials err = %v", err)
	}
}

func TestLowLoadNeverLate(t *testing.T) {
	// A single 200 KB request per 1 s round can essentially never be late.
	cfg := paperConfig(t, 1)
	e, err := EstimatePLate(cfg, 20000, 23)
	if err != nil {
		t.Fatal(err)
	}
	if e.Hits != 0 {
		t.Errorf("p_late(1) hits = %d, expected 0", e.Hits)
	}
}
