package sim

import (
	"fmt"
	"slices"

	"mzqos/internal/engine"
)

// Stream migration: the simulated engine's side of the cluster's
// evict-to-migrate contract, mirroring internal/server's semantics so a
// coordinator can exercise failover against cheap simulated fleets.

// evictedCap bounds the evicted-stream state buffer (how many shed
// streams stay exportable after the round that evicted them), matching
// the live server's retired-history default.
const evictedCap = 1024

// shedToLimit evicts the newest streams of every offset class whose
// occupancy exceeds the in-force limit, at the top of Step. No-op unless
// EngineConfig.ShedOnDegrade is set. Evicted ids are returned ascending;
// their states stay exportable through the bounded buffer.
func (e *Engine) shedToLimit() []engine.StreamID {
	// A failed shard does not shed-to-limit: its streams are stranded in
	// place (the limit is 0 only because admission closed) for the
	// coordinator's failover drain — mirroring the live server's default
	// of not evicting on failure.
	if !e.cfg.ShedOnDegrade || e.hFailed.Load() {
		return nil
	}
	limit := int(e.hLimit.Load())
	var evicted []engine.StreamID
	for class := range e.classes {
		excess := len(e.classes[class]) - limit
		if excess <= 0 {
			continue
		}
		ids := e.classes[class]
		// Class slices are kept ascending by StreamID, so the newest
		// streams are the tail ("last in, first shed").
		shed := ids[len(ids)-excess:]
		for _, id := range shed {
			e.rememberEvicted(id, e.streams[id])
			delete(e.streams, id)
		}
		e.classes[class] = ids[:len(ids)-excess]
		evicted = append(evicted, shed...)
	}
	if evicted == nil {
		return nil
	}
	slices.Sort(evicted)
	e.hActive.Store(int64(len(e.streams)))
	return evicted
}

// rememberEvicted buffers a shed stream's resumable state (bounded FIFO,
// oldest dropped).
func (e *Engine) rememberEvicted(id engine.StreamID, st *simStream) {
	if len(e.evictedQ) == evictedCap {
		delete(e.evicted, e.evictedQ[e.evictedAt])
		e.evictedQ[e.evictedAt] = id
		e.evictedAt++
		if e.evictedAt == evictedCap {
			e.evictedAt = 0
		}
	} else {
		e.evictedQ = append(e.evictedQ, id)
	}
	e.evicted[id] = simStreamState(st)
}

// simStreamState captures a stream's resumable state.
func simStreamState(st *simStream) engine.StreamState {
	return engine.StreamState{
		Object:   st.name,
		Position: st.next,
		Delay:    st.delay,
		Served:   st.next,
		Glitches: st.glitches,
	}
}

// ExportStream captures and removes a stream's resumable state: an
// active stream is withdrawn (slot freed, not reported completed), and a
// recently evicted stream's buffered state is surrendered.
func (e *Engine) ExportStream(id engine.StreamID) (engine.StreamState, error) {
	if st, ok := e.streams[id]; ok {
		state := simStreamState(st)
		e.removeFromClass(st.class, id)
		delete(e.streams, id)
		e.hActive.Store(int64(len(e.streams)))
		return state, nil
	}
	if state, ok := e.evicted[id]; ok {
		delete(e.evicted, id)
		return state, nil
	}
	return engine.StreamState{}, fmt.Errorf("%w: %d", ErrUnknownStream, id)
}

// ImportStream re-admits a stream mid-playback under the same admission
// discipline as Open (least-loaded class, limit enforced), resuming at
// state.Position. A finished or overrun position is rejected as a
// configuration error; an import with no admissible class is ErrRejected.
func (e *Engine) ImportStream(state engine.StreamState) (engine.StreamID, int, error) {
	length, ok := e.objects[state.Object]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownObject, state.Object)
	}
	if state.Position < 0 || state.Position >= length {
		return 0, 0, fmt.Errorf("%w: import position %d outside %q (%d rounds)",
			ErrConfig, state.Position, state.Object, length)
	}
	limit := int(e.hLimit.Load())
	bestClass, bestCount := -1, limit
	for c := 0; c < e.cfg.NumDisks; c++ {
		if n := len(e.classes[c]); n < bestCount {
			bestCount = n
			bestClass = c
		}
	}
	if bestClass < 0 {
		return 0, 0, ErrRejected
	}
	e.nextID++
	st := &simStream{
		name:     state.Object,
		class:    bestClass,
		start:    e.round,
		next:     state.Position,
		length:   length,
		delay:    state.Delay,
		glitches: state.Glitches,
	}
	e.streams[e.nextID] = st
	e.classes[bestClass] = append(e.classes[bestClass], e.nextID)
	e.hActive.Store(int64(len(e.streams)))
	return e.nextID, 0, nil
}

// ActiveStreams returns the open-stream ids, ascending — the drain list
// a coordinator walks when failing over the whole shard.
func (e *Engine) ActiveStreams() []engine.StreamID {
	ids := make([]engine.StreamID, 0, len(e.streams))
	for id := range e.streams {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}
