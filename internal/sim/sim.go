// Package sim implements the detailed disk simulator the paper validates
// its analytic model against (§4).
//
// One simulated round draws N requests — each with a placement uniform
// over the disk's bytes (which fixes its zone, transfer rate, and seek
// cylinder), a fragment size from the workload's size law, and a
// rotational latency uniform in [0, ROT) — serves them in SCAN order with
// the geometry's seek curve, and records which requests finish within the
// round. Monte-Carlo estimators aggregate rounds into p_late estimates
// (Figure 1) and whole stream histories into p_error estimates (Table 2),
// with Wilson confidence intervals and deterministic seeding for
// reproducibility. Workers run in parallel and merge their tallies.
package sim

import (
	"cmp"
	"errors"
	"math/rand/v2"
	"runtime"
	"slices"
	"sync"

	"mzqos/internal/disk"
	"mzqos/internal/dist"
	"mzqos/internal/fault"
	"mzqos/internal/telemetry"
	"mzqos/internal/trace"
	"mzqos/internal/workload"
)

// ErrConfig is returned for invalid simulation configurations.
var ErrConfig = errors.New("sim: invalid configuration")

// Config describes the simulated system: one disk of a striped server and
// its per-round request load.
type Config struct {
	// Disk is the drive geometry.
	Disk *disk.Geometry
	// Sizes is the fragment-size law.
	Sizes workload.SizeModel
	// RoundLength is the scheduling round length t in seconds.
	RoundLength float64
	// N is the number of concurrent streams served by the disk per round.
	N int
	// Workers caps simulation parallelism; 0 means GOMAXPROCS.
	Workers int
	// Access optionally replaces uniform-over-sectors placement with a
	// zone-aware access profile (must match the geometry when set).
	Access disk.AccessProfile
	// RoundTimes optionally receives every simulated round's total
	// service time T_N (EstimatePLate, EstimatePError, MeasureRounds, and
	// the sweeps built on them). The histogram is concurrency-safe, so
	// all parallel workers share it; build it with
	// telemetry.NewRoundTimeHistogram(RoundLength) to make the round
	// deadline an exact bucket boundary, which yields series directly
	// comparable with the server's mzqos_server_round_time_seconds.
	RoundTimes *telemetry.Histogram
	// Faults optionally perturbs the simulated service with the same
	// deterministic plans the server consumes: an identical (Plan, disk,
	// round) triple resolves to identical effects in both, so server runs
	// and simulations compare under the same fault schedule. The
	// stationary estimators (EstimatePLate, EstimatePError, MeasureRounds,
	// PositionBias) resolve the plan once at FaultRound and hold those
	// effects for every trial — they estimate the conditional probability
	// given that round's fault state. ReplayRounds advances the round
	// index through the plan's full timeline instead.
	Faults *fault.Plan
	// FaultDisk is the disk index this simulated drive plays in the plan.
	FaultDisk int
	// FaultRound is the round index at which the stationary estimators
	// resolve the plan's effects.
	FaultRound int
	// Trace optionally receives one RoundSpan per simulated round, with
	// per-request service events (see internal/trace). All workers of a
	// parallel estimator share the recorder, so spans from concurrent
	// trials interleave in commit order; the stationary estimators label
	// every span with FaultRound (EstimatePLate, MeasureRounds) or the
	// history round (EstimatePError), while ReplayRounds — being
	// single-threaded — emits a deterministic, gap-free stream suitable
	// for byte-identical replay comparison. Nil disables sim tracing.
	Trace *trace.Recorder
}

func (c Config) validate() error {
	if c.Disk == nil || c.Sizes.Dist == nil || !(c.RoundLength > 0) || c.N < 1 {
		return ErrConfig
	}
	if c.Access != nil && !c.Access.Valid(c.Disk) {
		return ErrConfig
	}
	if c.Faults != nil && c.FaultDisk < 0 {
		return ErrConfig
	}
	return nil
}

// injector builds the plan's injector (nil when no plan is configured;
// the fault package's nil injector resolves to identity effects).
func (c Config) injector() (*fault.Injector, error) {
	if c.Faults == nil {
		return nil, nil
	}
	return fault.NewInjector(*c.Faults, 0)
}

// stationaryEffects resolves the fault effects the stationary estimators
// simulate under: the plan evaluated at (FaultDisk, FaultRound).
func (c Config) stationaryEffects() (fault.Effects, error) {
	inj, err := c.injector()
	if err != nil {
		return fault.Effects{}, err
	}
	return inj.EffectsAt(c.FaultDisk, c.FaultRound), nil
}

// sampleLocation draws a request location under the configured placement.
func (c Config) sampleLocation(rng *rand.Rand) disk.Location {
	if c.Access != nil {
		return c.Disk.SampleLocationUnder(c.Access, rng)
	}
	return c.Disk.SampleLocation(rng)
}

// request is one per-round disk request during simulation.
type request struct {
	stream   int
	cylinder int
	zone     int
	size     float64
}

// roundScratch holds per-worker buffers so the hot loop does not allocate.
type roundScratch struct {
	reqs []request
	span trace.RoundSpan // trace scratch, reused across rounds
}

// downRoundSentinel is the round time (in round lengths) recorded for a
// round whose disk was fully failed, mirroring the server's down-round
// accounting: beyond the histogram's top finite bucket, so the round lands
// in +Inf and counts against the empirical late tail with a finite sum.
const downRoundSentinel = 16

// simulateRound plays one round under the given fault effects: draws the N
// requests, serves them in SCAN order starting from cylinder 0, and reports
// the total service time plus the number of lost (undelivered) requests. If
// lateFor is non-nil, it is filled with one bool per stream indicating
// whether that stream's request glitched (finished late or was lost).
// round labels the round in trace spans (it does not affect the service
// draws).
//
// readErr, when non-nil, decides read-error retries deterministically (the
// timeline replay wires it to the plan's hash draws so a server run under
// the same plan sees the identical error schedule); nil draws retries from
// rng at eff.ErrorProb, which is what the Monte-Carlo estimators want.
func simulateRound(cfg Config, eff fault.Effects, round int, readErr func(request, attempt int) bool, rng *rand.Rand, sc *roundScratch, lateFor []bool) (total float64, lost int) {
	tracing := cfg.Trace.Enabled()
	if eff.Failed {
		// A down disk serves nothing: every request is lost outright.
		for i := range lateFor {
			lateFor[i] = true
		}
		total = downRoundSentinel * cfg.RoundLength
		if cfg.RoundTimes != nil {
			cfg.RoundTimes.Observe(total)
		}
		if tracing {
			sp := &sc.span
			sp.Requests = sp.Requests[:0]
			for i := 0; i < cfg.N; i++ {
				sp.Requests = append(sp.Requests, trace.RequestEvent{Stream: int64(i), Lost: true})
			}
			*sp = trace.RoundSpan{
				Round: round, Disk: cfg.FaultDisk, Requests: sp.Requests,
				Observed: total, Lost: cfg.N, Faulty: true, Down: true,
			}
			cfg.Trace.Record(sp)
		}
		return total, cfg.N
	}
	if cap(sc.reqs) < cfg.N {
		sc.reqs = make([]request, cfg.N)
	}
	reqs := sc.reqs[:cfg.N]
	for i := range reqs {
		loc := cfg.sampleLocation(rng)
		reqs[i] = request{
			stream:   i,
			cylinder: loc.Cylinder,
			zone:     loc.Zone,
			size:     cfg.Sizes.Sample(rng),
		}
	}
	// SCAN: one sweep in ascending cylinder order from the parked arm.
	slices.SortFunc(reqs, func(a, b request) int { return cmp.Compare(a.cylinder, b.cylinder) })
	if tracing {
		sc.span = trace.RoundSpan{
			Round: round, Disk: cfg.FaultDisk,
			Requests: sc.span.Requests[:0],
			Faulty:   eff.Active(),
		}
	}
	arm := 0
	var clock float64
	for i := range reqs {
		r := &reqs[i]
		seekCyl := r.cylinder - arm
		if seekCyl < 0 {
			seekCyl = -seekCyl
		}
		seek := cfg.Disk.Seek.Time(float64(seekCyl)) * eff.LatencyScale
		rot := rng.Float64() * cfg.Disk.RotationTime * eff.LatencyScale // rotational latency
		trans := cfg.Disk.TransferTime(r.size, r.zone) * eff.LatencyScale / eff.RateScale
		start := clock
		clock += seek
		clock += rot
		clock += trans
		arm = r.cylinder

		isLost := false
		retries := 0
		if eff.ErrorProb > 0 {
			for attempt := 0; ; attempt++ {
				var fails bool
				if readErr != nil {
					fails = readErr(i, attempt)
				} else {
					fails = rng.Float64() < eff.ErrorProb
				}
				if !fails {
					break
				}
				if attempt >= eff.Retries {
					isLost = true // retries exhausted: the fragment is lost
					break
				}
				// Each retry re-reads after one full (inflated) revolution.
				penalty := cfg.Disk.RotationTime * eff.LatencyScale
				clock += penalty
				rot += penalty
				retries++
			}
		}
		if isLost {
			lost++
		}
		if lateFor != nil {
			lateFor[r.stream] = isLost || clock > cfg.RoundLength
		}
		if tracing {
			sp := &sc.span
			isLate := !isLost && clock > cfg.RoundLength
			sp.Requests = append(sp.Requests, trace.RequestEvent{
				Stream:        int64(r.stream),
				Cylinder:      r.cylinder,
				Zone:          r.zone,
				SeekCylinders: seekCyl,
				Bytes:         r.size,
				Start:         start,
				Seek:          seek,
				Rotation:      rot,
				Transfer:      trans,
				Retries:       retries,
				Late:          isLate,
				Lost:          isLost,
			})
			sp.Seek += seek
			sp.Rotation += rot
			sp.Transfer += trans
			sp.Retries += retries
			if isLost {
				sp.Lost++
			} else if isLate {
				sp.Late++
			}
		}
	}
	if cfg.RoundTimes != nil {
		cfg.RoundTimes.Observe(clock)
	}
	if tracing {
		sc.span.Busy = clock
		sc.span.Observed = clock
		cfg.Trace.Record(&sc.span)
	}
	return clock, lost
}

// Estimate is a Monte-Carlo probability estimate with a 95% Wilson score
// confidence interval.
type Estimate struct {
	// P is the point estimate k/n.
	P float64
	// Lo, Hi delimit the 95% Wilson interval.
	Lo, Hi float64
	// Hits is the number of positive outcomes.
	Hits int64
	// Trials is the number of observations.
	Trials int64
}

func newEstimate(hits, trials int64) Estimate {
	e := Estimate{Hits: hits, Trials: trials}
	if trials > 0 {
		e.P = float64(hits) / float64(trials)
	}
	e.Lo, e.Hi = dist.WilsonInterval(hits, trials, 1.96)
	return e
}

// workers resolves the worker count.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// EstimatePLate estimates p_late(N, t): the probability that one round's
// total service time exceeds the round length (the simulated curve of
// Figure 1). trials rounds are split across parallel workers; seed makes
// the result reproducible for a given worker count.
func EstimatePLate(cfg Config, trials int, seed uint64) (Estimate, error) {
	if err := cfg.validate(); err != nil {
		return Estimate{}, err
	}
	if trials < 1 {
		return Estimate{}, ErrConfig
	}
	eff, err := cfg.stationaryEffects()
	if err != nil {
		return Estimate{}, err
	}
	nw := cfg.workers()
	var wg sync.WaitGroup
	hits := make([]int64, nw)
	for w := 0; w < nw; w++ {
		share := trials / nw
		if w < trials%nw {
			share++
		}
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			rng := dist.NewRand(seed, uint64(w)*0x9e3779b97f4a7c15+1)
			var sc roundScratch
			var h int64
			for i := 0; i < share; i++ {
				if total, _ := simulateRound(cfg, eff, cfg.FaultRound, nil, rng, &sc, nil); total > cfg.RoundLength {
					h++
				}
			}
			hits[w] = h
		}(w, share)
	}
	wg.Wait()
	var total int64
	for _, h := range hits {
		total += h
	}
	return newEstimate(total, int64(trials)), nil
}

// EstimatePError estimates p_error(N, t, M, g): the probability that one
// stream suffers at least g glitches over M rounds (the simulated column
// of Table 2). Each of runs independent histories simulates M rounds of N
// streams with fresh placements; every stream in every run is one
// observation, so the estimate is over runs·N stream histories.
func EstimatePError(cfg Config, rounds, glitches, runs int, seed uint64) (Estimate, error) {
	if err := cfg.validate(); err != nil {
		return Estimate{}, err
	}
	if rounds < 1 || glitches < 0 || glitches > rounds || runs < 1 {
		return Estimate{}, ErrConfig
	}
	eff, err := cfg.stationaryEffects()
	if err != nil {
		return Estimate{}, err
	}
	nw := cfg.workers()
	var wg sync.WaitGroup
	hits := make([]int64, nw)
	for w := 0; w < nw; w++ {
		share := runs / nw
		if w < runs%nw {
			share++
		}
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			rng := dist.NewRand(seed^0xabcdef, uint64(w)*0x9e3779b97f4a7c15+1)
			var sc roundScratch
			late := make([]bool, cfg.N)
			counts := make([]int, cfg.N)
			var h int64
			for run := 0; run < share; run++ {
				for i := range counts {
					counts[i] = 0
				}
				for r := 0; r < rounds; r++ {
					simulateRound(cfg, eff, r, nil, rng, &sc, late)
					for s, isLate := range late {
						if isLate {
							counts[s]++
						}
					}
				}
				for _, c := range counts {
					if c >= glitches {
						h++
					}
				}
			}
			hits[w] = h
		}(w, share)
	}
	wg.Wait()
	var total int64
	for _, h := range hits {
		total += h
	}
	return newEstimate(total, int64(runs)*int64(cfg.N)), nil
}

// RoundStats summarizes simulated round service times.
type RoundStats struct {
	// Mean and Std are the sample moments of the total round time.
	Mean, Std float64
	// PLate is the fraction of rounds exceeding the round length.
	PLate float64
	// Trials is the number of simulated rounds.
	Trials int64
}

// MeasureRounds simulates rounds and returns summary statistics, used to
// cross-validate the analytic round moments.
func MeasureRounds(cfg Config, trials int, seed uint64) (RoundStats, error) {
	if err := cfg.validate(); err != nil {
		return RoundStats{}, err
	}
	if trials < 1 {
		return RoundStats{}, ErrConfig
	}
	eff, err := cfg.stationaryEffects()
	if err != nil {
		return RoundStats{}, err
	}
	nw := cfg.workers()
	var wg sync.WaitGroup
	accs := make([]dist.Welford, nw)
	lates := make([]int64, nw)
	for w := 0; w < nw; w++ {
		share := trials / nw
		if w < trials%nw {
			share++
		}
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			rng := dist.NewRand(seed^0x5eed, uint64(w)*0x9e3779b97f4a7c15+1)
			var sc roundScratch
			for i := 0; i < share; i++ {
				total, _ := simulateRound(cfg, eff, cfg.FaultRound, nil, rng, &sc, nil)
				accs[w].Add(total)
				if total > cfg.RoundLength {
					lates[w]++
				}
			}
		}(w, share)
	}
	wg.Wait()
	var acc dist.Welford
	var late int64
	for w := 0; w < nw; w++ {
		acc.Merge(accs[w])
		late += lates[w]
	}
	return RoundStats{
		Mean:   acc.Mean(),
		Std:    acc.Std(),
		PLate:  float64(late) / float64(acc.N()),
		Trials: acc.N(),
	}, nil
}

// PositionBias estimates the per-request glitch probability by SCAN
// position: requests served late in the sweep are far more likely to miss
// the deadline. This is exactly why §3.3 requires fragments to occupy
// "uncorrelated positions of the sweeps" across rounds — random placement
// turns this positional unfairness into a fair lottery over streams. The
// returned slice has one estimate per sweep position (0 = first served).
func PositionBias(cfg Config, trials int, seed uint64) ([]Estimate, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if trials < 1 {
		return nil, ErrConfig
	}
	eff, err := cfg.stationaryEffects()
	if err != nil {
		return nil, err
	}
	if eff.Failed {
		// Every position misses on a down disk; the sweep below never runs.
		out := make([]Estimate, cfg.N)
		for pos := range out {
			out[pos] = newEstimate(int64(trials), int64(trials))
		}
		return out, nil
	}
	nw := cfg.workers()
	var wg sync.WaitGroup
	hits := make([][]int64, nw)
	for w := 0; w < nw; w++ {
		share := trials / nw
		if w < trials%nw {
			share++
		}
		hits[w] = make([]int64, cfg.N)
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			rng := dist.NewRand(seed^0xb1a5, uint64(w)*0x9e3779b97f4a7c15+1)
			var sc roundScratch
			if cap(sc.reqs) < cfg.N {
				sc.reqs = make([]request, cfg.N)
			}
			for i := 0; i < share; i++ {
				reqs := sc.reqs[:cfg.N]
				for j := range reqs {
					loc := cfg.sampleLocation(rng)
					reqs[j] = request{cylinder: loc.Cylinder, zone: loc.Zone, size: cfg.Sizes.Sample(rng)}
				}
				slices.SortFunc(reqs, func(a, b request) int { return cmp.Compare(a.cylinder, b.cylinder) })
				arm := 0
				var clock float64
				for pos := range reqs {
					r := &reqs[pos]
					d := float64(r.cylinder - arm)
					if d < 0 {
						d = -d
					}
					clock += cfg.Disk.Seek.Time(d) * eff.LatencyScale
					clock += rng.Float64() * cfg.Disk.RotationTime * eff.LatencyScale
					clock += cfg.Disk.TransferTime(r.size, r.zone) * eff.LatencyScale / eff.RateScale
					arm = r.cylinder
					if clock > cfg.RoundLength {
						hits[w][pos]++
					}
				}
			}
		}(w, share)
	}
	wg.Wait()
	out := make([]Estimate, cfg.N)
	for pos := 0; pos < cfg.N; pos++ {
		var total int64
		for w := 0; w < nw; w++ {
			total += hits[w][pos]
		}
		out[pos] = newEstimate(total, int64(trials))
	}
	return out, nil
}

// RoundOutcome is one replayed round's result.
type RoundOutcome struct {
	// Round is the timeline round index.
	Round int
	// Total is the sweep's service time T_N (the down-round sentinel when
	// the disk was failed).
	Total float64
	// Glitches is the number of requests that missed the deadline or were
	// lost; Lost is the undelivered subset.
	Glitches int
	Lost     int
	// Faulty marks a round with any active fault effect; Down a fully
	// failed disk.
	Faulty bool
	Down   bool
}

// ReplayRounds plays `rounds` consecutive rounds through the configured
// fault plan's timeline, starting at round 0: each round's effects are
// resolved at its own index (unlike the stationary estimators), and
// read-error retries follow the plan's deterministic hash draws — so a
// server running under the same plan experiences the identical fault
// schedule round for round. The replay is single-threaded by design; seed
// makes it reproducible.
func ReplayRounds(cfg Config, rounds int, seed uint64) ([]RoundOutcome, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if rounds < 1 {
		return nil, ErrConfig
	}
	inj, err := cfg.injector()
	if err != nil {
		return nil, err
	}
	rng := dist.NewRand(seed, seed^0x9e3779b97f4a7c15)
	var sc roundScratch
	late := make([]bool, cfg.N)
	out := make([]RoundOutcome, 0, rounds)
	for r := 0; r < rounds; r++ {
		eff := inj.EffectsAt(cfg.FaultDisk, r)
		readErr := func(request, attempt int) bool {
			return inj.ReadError(cfg.FaultDisk, r, request, attempt)
		}
		total, lost := simulateRound(cfg, eff, r, readErr, rng, &sc, late)
		glitches := 0
		for _, l := range late {
			if l {
				glitches++
			}
		}
		out = append(out, RoundOutcome{
			Round:    r,
			Total:    total,
			Glitches: glitches,
			Lost:     lost,
			Faulty:   eff.Active(),
			Down:     eff.Failed,
		})
	}
	return out, nil
}

// PLateSweep estimates p_late across a range of multiprogramming levels
// (the simulated series of Figure 1). The returned slice has one Estimate
// per N in [nLo, nHi].
func PLateSweep(cfg Config, nLo, nHi, trials int, seed uint64) ([]Estimate, error) {
	if nLo < 1 || nHi < nLo {
		return nil, ErrConfig
	}
	out := make([]Estimate, 0, nHi-nLo+1)
	for n := nLo; n <= nHi; n++ {
		c := cfg
		c.N = n
		e, err := EstimatePLate(c, trials, seed+uint64(n))
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}
