package sim

import (
	"errors"
	"reflect"
	"testing"

	"mzqos/internal/disk"
	"mzqos/internal/engine"
	"mzqos/internal/fault"
	"mzqos/internal/workload"
)

func testEngine(t testing.TB, numDisks, perDisk int, seed uint64, plan *fault.Plan) *Engine {
	t.Helper()
	e, err := NewEngine(EngineConfig{
		Disk:         disk.QuantumViking21(),
		NumDisks:     numDisks,
		Sizes:        workload.PaperSizes(),
		RoundLength:  1,
		PerDiskLimit: perDisk,
		Seed:         seed,
		Faults:       plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineConfigValidation(t *testing.T) {
	if _, err := NewEngine(EngineConfig{}); err == nil {
		t.Error("empty config should error")
	}
	if _, err := NewEngine(EngineConfig{
		Disk: disk.QuantumViking21(), Sizes: workload.PaperSizes(),
		RoundLength: 1, NumDisks: 2, PerDiskLimit: 0,
	}); err == nil {
		t.Error("zero per-disk limit should error")
	}
}

func TestEngineAdmissionLimit(t *testing.T) {
	e := testEngine(t, 4, 3, 7, nil)
	if e.Capacity() != 12 {
		t.Fatalf("Capacity = %d, want 12", e.Capacity())
	}
	if err := e.AddSyntheticObject("vod", 100); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, _, err := e.Open("vod"); err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
	}
	if _, _, err := e.Open("vod"); !errors.Is(err, engine.ErrRejected) {
		t.Fatalf("open past capacity: err = %v, want ErrRejected", err)
	}
	if e.Active() != 12 {
		t.Errorf("Active = %d, want 12", e.Active())
	}
	h := e.Health()
	if h.Active != 12 || h.Capacity != 12 || h.PerDiskLimit != 3 || h.Degraded {
		t.Errorf("Health = %+v, want 12 active over capacity 12", h)
	}
	if _, _, err := e.Open("ghost"); !errors.Is(err, engine.ErrUnknownObject) {
		t.Errorf("open unknown object: err = %v, want ErrUnknownObject", err)
	}
}

func TestEngineStepServesAndCompletes(t *testing.T) {
	e := testEngine(t, 4, 4, 11, nil)
	if err := e.AddSyntheticObject("clip", 3); err != nil {
		t.Fatal(err)
	}
	var ids []engine.StreamID
	for i := 0; i < 8; i++ {
		id, _, err := e.Open("clip")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	sum := e.Run(3)
	if sum.Requests != 8*3 {
		t.Errorf("Requests = %d, want 24 (8 streams × 3 rounds)", sum.Requests)
	}
	if sum.Completed != 8 {
		t.Errorf("Completed = %d, want all 8", sum.Completed)
	}
	if e.Active() != 0 {
		t.Errorf("Active after completion = %d, want 0", e.Active())
	}
	if e.Round() != 3 {
		t.Errorf("Round = %d, want 3", e.Round())
	}
	_ = ids
	if sum.BusyTime <= 0 {
		t.Error("BusyTime should be positive for served rounds")
	}
}

func TestEngineStepDeterministic(t *testing.T) {
	run := func() []engine.RoundReport {
		e := testEngine(t, 3, 5, 99, nil)
		if err := e.AddSyntheticObject("vod", 6); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 15; i++ {
			if _, _, err := e.Open("vod"); err != nil {
				t.Fatal(err)
			}
		}
		var reps []engine.RoundReport
		for r := 0; r < 6; r++ {
			reps = append(reps, e.Step())
		}
		return reps
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Error("identical seeds produced different round reports")
	}
}

func TestEngineCloseReleasesSlot(t *testing.T) {
	e := testEngine(t, 2, 1, 5, nil)
	if err := e.AddSyntheticObject("vod", 10); err != nil {
		t.Fatal(err)
	}
	id1, _, err := e.Open("vod")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Open("vod"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Open("vod"); !errors.Is(err, ErrRejected) {
		t.Fatalf("open at capacity: err = %v, want ErrRejected", err)
	}
	if err := e.Close(id1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Open("vod"); err != nil {
		t.Fatalf("open after close: %v", err)
	}
	if err := e.Close(id1); !errors.Is(err, engine.ErrUnknownStream) {
		t.Errorf("double close: err = %v, want ErrUnknownStream", err)
	}
}

func TestEngineDegradeAndRecalibrate(t *testing.T) {
	e := testEngine(t, 2, 4, 3, nil)
	e.Degrade(1)
	if !e.Degraded() || e.PerDiskLimit() != 1 || e.Capacity() != 2 {
		t.Fatalf("after Degrade(1): degraded=%v limit=%d capacity=%d, want true/1/2",
			e.Degraded(), e.PerDiskLimit(), e.Capacity())
	}
	old, now, err := e.Recalibrate(0)
	if err != nil {
		t.Fatal(err)
	}
	if old != 1 || now != 4 {
		t.Errorf("Recalibrate = (%d, %d), want identity refresh (1, 4)", old, now)
	}
	if e.Degraded() || e.Capacity() != 8 {
		t.Error("Recalibrate should clear degradation and restore capacity")
	}
}

func TestEngineFailedDiskLosesFragments(t *testing.T) {
	plan := &fault.Plan{Faults: []fault.Fault{{
		Kind: fault.Failure, Disk: 0, From: 0, Until: 2,
	}}}
	e := testEngine(t, 2, 4, 21, plan)
	if err := e.AddSyntheticObject("vod", 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, _, err := e.Open("vod"); err != nil {
			t.Fatal(err)
		}
	}
	rep := e.Step()
	if !rep.Disks[0].Down || !rep.Disks[0].Faulty {
		t.Fatalf("disk 0 should be down in round 0: %+v", rep.Disks[0])
	}
	if rep.Disks[0].Lost != rep.Disks[0].Requests {
		t.Errorf("down disk lost %d of %d requests, want all", rep.Disks[0].Lost, rep.Disks[0].Requests)
	}
	if rep.Glitches < rep.Disks[0].Lost {
		t.Errorf("Glitches = %d < lost %d", rep.Glitches, rep.Disks[0].Lost)
	}
	effs := e.FaultEffectsAt(0)
	if len(effs) != 2 || !effs[0].Failed || effs[1].Failed {
		t.Errorf("FaultEffectsAt(0) = %+v, want disk 0 failed only", effs)
	}
}
