package sim

import (
	"fmt"
	"math/rand/v2"
	"sync/atomic"

	"mzqos/internal/disk"
	"mzqos/internal/dist"
	"mzqos/internal/engine"
	"mzqos/internal/fault"
	"mzqos/internal/workload"
)

// The simulated engine implements the shared shard contract.
var _ engine.Engine = (*Engine)(nil)

// Errors reported by the simulated engine. The admission and catalog
// conditions wrap the engine-level sentinels, so errors.Is matches either
// identity.
var (
	// ErrRejected is returned when admission control turns a stream away.
	ErrRejected = fmt.Errorf("sim: %w", engine.ErrRejected)
	// ErrUnknownObject is returned for opens of objects not in the catalog.
	ErrUnknownObject = fmt.Errorf("sim: %w", engine.ErrUnknownObject)
	// ErrUnknownStream is returned for operations on closed or unknown
	// streams.
	ErrUnknownStream = fmt.Errorf("sim: %w", engine.ErrUnknownStream)
	// ErrDuplicateObject is returned when an object name is already taken.
	ErrDuplicateObject = fmt.Errorf("sim: %w", engine.ErrDuplicateObject)
)

// EngineConfig assembles a simulated shard engine.
type EngineConfig struct {
	// Disk is the drive geometry, replicated NumDisks times (the paper's
	// homogeneous array, §2.1).
	Disk *disk.Geometry
	// NumDisks is the array width D.
	NumDisks int
	// Sizes is the fragment-size law requests draw from. Unlike the live
	// server, the simulated engine models load statistically: every
	// served fragment's size and placement are drawn fresh from this law,
	// and an object's stored sizes determine only its playback length.
	Sizes workload.SizeModel
	// RoundLength is the scheduling round length t in seconds.
	RoundLength float64
	// PerDiskLimit is the admission limit N_max per disk. The simulated
	// engine takes the limit as given (derive it with internal/model when
	// the analytic guarantee matters); engine capacity is D·PerDiskLimit.
	PerDiskLimit int
	// Seed makes the engine's service draws reproducible.
	Seed uint64
	// Faults optionally perturbs service with a deterministic fault plan,
	// resolved per (disk, round) exactly as the live server resolves it.
	Faults *fault.Plan
	// ShedOnDegrade makes Step evict the newest streams of any offset
	// class whose occupancy exceeds the in-force limit (mirroring the live
	// server's ShedNewest policy) instead of letting over-limit classes
	// drain by attrition. Evicted streams are reported in the round's
	// Evicted set and stay exportable for one migration window.
	ShedOnDegrade bool
}

func (c EngineConfig) validate() error {
	if c.Disk == nil || c.Sizes.Dist == nil || !(c.RoundLength > 0) ||
		c.NumDisks < 1 || c.PerDiskLimit < 1 {
		return ErrConfig
	}
	return nil
}

// simStream is one admitted simulated stream.
type simStream struct {
	name     string // catalog object, kept so the stream is exportable
	class    int    // offset class: reads disk (class+round) mod D
	start    int    // first service round
	next     int    // fragments consumed
	length   int    // playback length in rounds
	delay    int    // accumulated startup-delay credit (import slotting)
	glitches int    // late or lost fragments seen by this stream
}

// Engine is the lightweight simulated implementation of engine.Engine: a
// shard whose per-round service times come from the Monte-Carlo sweep
// kernel instead of a live catalog of placed fragments. It keeps the
// server's admission discipline — per-offset-class slots capped at
// N_max, streams reading disk (class+round) mod D — but draws each
// round's placements and sizes fresh from the workload law, which makes
// admitting and stepping hundreds of thousands of streams cheap enough
// to exercise fleet-scale coordination.
//
// Mutating calls follow the engine contract (single goroutine); Health
// reads only atomic state and may be called concurrently.
type Engine struct {
	cfg     EngineConfig
	inj     *fault.Injector
	rng     *rand.Rand
	objects map[string]int // name → playback length in rounds
	streams map[engine.StreamID]*simStream
	classes [][]engine.StreamID // per class, ascending StreamID
	nextID  engine.StreamID
	round   int

	// Heartbeat state, mirrored atomically for concurrent Health readers.
	hActive   atomic.Int64
	hLimit    atomic.Int64
	hRound    atomic.Int64
	hDegraded atomic.Bool
	hFailed   atomic.Bool

	// Evicted-stream states: bounded FIFO ring so a coordinator can still
	// export (and so migrate) a stream shed by ShedOnDegrade.
	evicted   map[engine.StreamID]engine.StreamState
	evictedQ  []engine.StreamID
	evictedAt int

	sc      roundScratch
	lateFor []bool
	ids     []engine.StreamID // per-disk due-stream scratch
}

// NewEngine builds a simulated shard engine.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	inj, err := func() (*fault.Injector, error) {
		if cfg.Faults == nil {
			return nil, nil
		}
		return fault.NewInjector(*cfg.Faults, 0)
	}()
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	e := &Engine{
		cfg:     cfg,
		inj:     inj,
		rng:     dist.NewRand(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15),
		objects: make(map[string]int),
		streams: make(map[engine.StreamID]*simStream),
		classes: make([][]engine.StreamID, cfg.NumDisks),
		evicted: make(map[engine.StreamID]engine.StreamState),
	}
	e.hLimit.Store(int64(cfg.PerDiskLimit))
	return e, nil
}

// AddObject stores a continuous object. Only the playback length (one
// round per fragment) is retained; sizes must still be positive so the
// catalog vocabulary matches the live server's.
func (e *Engine) AddObject(name string, sizes []float64) error {
	if name == "" || len(sizes) == 0 {
		return ErrConfig
	}
	if _, ok := e.objects[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateObject, name)
	}
	for i, sz := range sizes {
		if !(sz > 0) {
			return fmt.Errorf("%w: fragment %d has size %v", ErrConfig, i, sz)
		}
	}
	e.objects[name] = len(sizes)
	return nil
}

// AddSyntheticObject stores an object of the given playback length.
func (e *Engine) AddSyntheticObject(name string, rounds int) error {
	if rounds < 1 {
		return ErrConfig
	}
	sizes := make([]float64, rounds)
	for i := range sizes {
		sizes[i] = 1
	}
	return e.AddObject(name, sizes)
}

// Open admits a new stream on the named object, or returns ErrRejected
// when every offset class is at the admission limit. Mirroring the live
// server, the least-loaded class reachable within the next D rounds wins
// (smallest delay on ties), so load stays balanced across disks.
func (e *Engine) Open(name string) (id engine.StreamID, startupDelay int, err error) {
	length, ok := e.objects[name]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownObject, name)
	}
	limit := int(e.hLimit.Load())
	d := e.cfg.NumDisks
	// Classes are statistically interchangeable here (placements are drawn
	// fresh each round), so the admissible start slots are simply all D
	// classes; pick the least loaded, lowest class index on ties.
	bestClass, bestCount := -1, limit
	for c := 0; c < d; c++ {
		if n := len(e.classes[c]); n < bestCount {
			bestCount = n
			bestClass = c
		}
	}
	if bestClass < 0 {
		return 0, 0, ErrRejected
	}
	// The stream starts in the next round its class's disk comes around —
	// immediately, since class c reads disk (c+round) mod D every round.
	e.nextID++
	st := &simStream{name: name, class: bestClass, start: e.round, length: length}
	e.streams[e.nextID] = st
	e.classes[bestClass] = append(e.classes[bestClass], e.nextID)
	e.hActive.Store(int64(len(e.streams)))
	return e.nextID, 0, nil
}

// Close stops a stream early, releasing its admission slot.
func (e *Engine) Close(id engine.StreamID) error {
	st, ok := e.streams[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownStream, id)
	}
	e.removeFromClass(st.class, id)
	delete(e.streams, id)
	e.hActive.Store(int64(len(e.streams)))
	return nil
}

func (e *Engine) removeFromClass(class int, id engine.StreamID) {
	ids := e.classes[class]
	for i, v := range ids {
		if v == id {
			e.classes[class] = append(ids[:i], ids[i+1:]...)
			return
		}
	}
}

// Step executes one simulated round: each offset class's streams read
// from disk (class+round) mod D, and each loaded disk serves its due
// requests through the Monte-Carlo sweep kernel under that disk's fault
// effects for the round. Per-stream glitch outcomes map back onto the
// class's streams in ascending StreamID order, so a fixed Seed (plus
// fault plan) reproduces byte-identical reports.
func (e *Engine) Step() engine.RoundReport {
	d := e.cfg.NumDisks
	rep := engine.RoundReport{Round: e.round, Disks: make([]engine.DiskRoundReport, d)}
	rep.Evicted = e.shedToLimit()
	base := Config{
		Disk:        e.cfg.Disk,
		Sizes:       e.cfg.Sizes,
		RoundLength: e.cfg.RoundLength,
	}
	var done []engine.StreamID
	for dd := 0; dd < d; dd++ {
		class := ((dd-e.round)%d + d) % d
		// Gather the due streams of the class (already ascending by id).
		e.ids = e.ids[:0]
		for _, id := range e.classes[class] {
			if st := e.streams[id]; e.round >= st.start {
				e.ids = append(e.ids, id)
			}
		}
		eff := e.inj.EffectsAt(dd, e.round)
		dr := &rep.Disks[dd]
		dr.Faulty = eff.Active()
		dr.Down = eff.Failed
		n := len(e.ids)
		if n == 0 {
			continue
		}
		dr.Requests = n
		cfg := base
		cfg.N = n
		cfg.FaultDisk = dd
		if cap(e.lateFor) < n {
			e.lateFor = make([]bool, n)
		}
		late := e.lateFor[:n]
		var readErr func(request, attempt int) bool
		if eff.ErrorProb > 0 {
			round := e.round
			readErr = func(req, attempt int) bool {
				return e.inj.ReadError(dd, round, req, attempt)
			}
		}
		total, lost := simulateRound(cfg, eff, e.round, readErr, e.rng, &e.sc, late)
		if !eff.Failed {
			dr.Busy = total
		}
		dr.Lost = lost
		glitched := 0
		for i, id := range e.ids {
			st := e.streams[id]
			if late[i] {
				glitched++
				st.glitches++
			}
			st.next++
			if st.next >= st.length {
				done = append(done, id)
			}
		}
		rep.Glitches += glitched
		// The kernel reports glitches (late ∪ lost) per stream and lost in
		// aggregate; the late-only count is their difference.
		if g := glitched - lost; g > 0 {
			dr.Late = g
		}
	}
	for _, id := range done {
		st := e.streams[id]
		e.removeFromClass(st.class, id)
		delete(e.streams, id)
	}
	rep.Completed = done
	e.hActive.Store(int64(len(e.streams)))
	e.round++
	e.hRound.Store(int64(e.round))
	return rep
}

// Run executes n rounds and returns an aggregate summary.
func (e *Engine) Run(n int) engine.RunSummary {
	var sum engine.RunSummary
	sum.FirstRound = e.round
	for i := 0; i < n; i++ {
		sum.Observe(e.Step())
	}
	sum.DiskTime = float64(n) * e.cfg.RoundLength * float64(e.cfg.NumDisks)
	return sum
}

// Recalibrate restores the configured admission limit and clears any
// degraded override. The simulated engine has no observed-moment solver
// (its workload law is the configuration), so recalibration is the
// identity refresh back to EngineConfig.PerDiskLimit.
func (e *Engine) Recalibrate(minSamples int64) (oldLimit, newLimit int, err error) {
	old := int(e.hLimit.Load())
	e.hLimit.Store(int64(e.cfg.PerDiskLimit))
	e.hDegraded.Store(false)
	e.hFailed.Store(false)
	return old, e.cfg.PerDiskLimit, nil
}

// Degrade shrinks the in-force admission limit to perDisk (clamped at 0)
// and marks the engine degraded — the simulated analogue of the live
// server's fault-degradation controller, convenient for exercising
// cluster shed/reroute behavior. Recalibrate restores the configured
// limit. Existing streams are not evicted; admission simply stays closed
// for classes above the new limit until they drain.
func (e *Engine) Degrade(perDisk int) {
	if perDisk < 0 {
		perDisk = 0
	}
	e.hLimit.Store(int64(perDisk))
	e.hDegraded.Store(true)
}

// SetFailed marks (or clears) full shard failure: admission closes
// (limit 0) and Health reports Failed, telling a cluster coordinator to
// fail the active set over to sibling replicas — the simulated analogue
// of a disk failure closing the live server's admission. Distinct from
// Degrade(0), which merely zeroes capacity while streams ride out the
// fault. Recalibrate clears both.
func (e *Engine) SetFailed(failed bool) {
	e.hFailed.Store(failed)
	if failed {
		e.hLimit.Store(0)
		e.hDegraded.Store(true)
	}
}

// NumDisks returns the array width D.
func (e *Engine) NumDisks() int { return e.cfg.NumDisks }

// PerDiskLimit returns the admission limit N_max per disk in force.
func (e *Engine) PerDiskLimit() int { return int(e.hLimit.Load()) }

// Capacity returns the engine-wide admission limit D·N_max.
func (e *Engine) Capacity() int { return e.cfg.NumDisks * int(e.hLimit.Load()) }

// Active returns the number of open streams.
func (e *Engine) Active() int { return int(e.hActive.Load()) }

// Round returns the next round index.
func (e *Engine) Round() int { return e.round }

// Degraded reports whether a Degrade override is in force.
func (e *Engine) Degraded() bool { return e.hDegraded.Load() }

// FaultEffectsAt resolves the configured fault plan at a round (identity
// effects when no plan is configured).
func (e *Engine) FaultEffectsAt(round int) []fault.Effects {
	effs := make([]fault.Effects, e.cfg.NumDisks)
	for dd := range effs {
		effs[dd] = e.inj.EffectsAt(dd, round)
	}
	return effs
}

// Health returns a concurrent-safe load/limit snapshot.
func (e *Engine) Health() engine.Health {
	limit := int(e.hLimit.Load())
	return engine.Health{
		Active:       int(e.hActive.Load()),
		PerDiskLimit: limit,
		Capacity:     limit * e.cfg.NumDisks,
		Round:        int(e.hRound.Load()),
		Degraded:     e.hDegraded.Load(),
		Failed:       e.hFailed.Load(),
	}
}
