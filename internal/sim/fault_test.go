package sim

import (
	"reflect"
	"testing"

	"mzqos/internal/disk"
	"mzqos/internal/fault"
	"mzqos/internal/workload"
)

func faultCfg(n int, plan *fault.Plan) Config {
	return Config{
		Disk:        disk.QuantumViking21(),
		Sizes:       workload.PaperSizes(),
		RoundLength: 1,
		N:           n,
		Workers:     2,
		Faults:      plan,
	}
}

func TestReplayRoundsDeterministic(t *testing.T) {
	plan := &fault.Plan{Seed: 3, Faults: []fault.Fault{
		{Kind: fault.Latency, Disk: 0, From: 5, Until: 15, Factor: 1.8},
		{Kind: fault.ReadError, Disk: 0, From: 8, Until: 20, Prob: 0.25, Retries: 1},
		{Kind: fault.Failure, Disk: 0, From: 22, Until: 25},
	}}
	a, err := ReplayRounds(faultCfg(8, plan), 30, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplayRounds(faultCfg(8, plan), 30, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("identical config+seed replays diverged")
	}
}

func TestReplayRoundsTimeline(t *testing.T) {
	plan := &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Latency, Disk: 0, From: 5, Until: 10, Factor: 3},
		{Kind: fault.Failure, Disk: 0, From: 12, Until: 14},
	}}
	outs, err := ReplayRounds(faultCfg(6, plan), 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 20 {
		t.Fatalf("len = %d", len(outs))
	}
	for _, o := range outs {
		wantFaulty := (o.Round >= 5 && o.Round < 10) || (o.Round >= 12 && o.Round < 14)
		wantDown := o.Round >= 12 && o.Round < 14
		if o.Faulty != wantFaulty || o.Down != wantDown {
			t.Errorf("round %d: faulty=%v down=%v, want %v/%v", o.Round, o.Faulty, o.Down, wantFaulty, wantDown)
		}
		if o.Down {
			if o.Lost != 6 || o.Glitches != 6 {
				t.Errorf("down round %d: lost=%d glitches=%d, want 6/6", o.Round, o.Lost, o.Glitches)
			}
			if o.Total <= 8 { // beyond the histogram's 8t top bucket
				t.Errorf("down round %d total = %v, want sentinel past 8t", o.Round, o.Total)
			}
		}
	}
	// Healthy replay of the same config is fault-free end to end.
	clean, err := ReplayRounds(faultCfg(6, nil), 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range clean {
		if o.Faulty || o.Down || o.Lost != 0 {
			t.Fatalf("healthy replay shows faults: %+v", o)
		}
	}
}

func TestLatencyFaultRaisesPLate(t *testing.T) {
	plan := &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Latency, Disk: 0, From: 0, Factor: 2},
	}}
	healthy := faultCfg(26, nil)
	degraded := faultCfg(26, plan)
	ph, err := EstimatePLate(healthy, 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := EstimatePLate(degraded, 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	// At the paper's N_max the healthy tail is ≤ ~1%; doubled latency
	// pushes essentially every round past the deadline.
	if ph.P > 0.05 {
		t.Errorf("healthy p_late = %v, want small", ph.P)
	}
	if pd.P < 0.9 {
		t.Errorf("2x latency p_late = %v, want ≈1", pd.P)
	}
}

func TestFailedDiskStationaryEstimates(t *testing.T) {
	plan := &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Failure, Disk: 0, From: 0},
	}}
	cfg := faultCfg(4, plan)
	p, err := EstimatePLate(cfg, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.P != 1 {
		t.Errorf("p_late on a failed disk = %v, want 1", p.P)
	}
	pe, err := EstimatePError(cfg, 10, 1, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pe.P != 1 {
		t.Errorf("p_error on a failed disk = %v, want 1", pe.P)
	}
	bias, err := PositionBias(cfg, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	for pos, e := range bias {
		if e.P != 1 {
			t.Errorf("position %d bias = %v on a failed disk, want 1", pos, e.P)
		}
	}
}

func TestReadErrorFaultLosesFragments(t *testing.T) {
	plan := &fault.Plan{Seed: 17, Faults: []fault.Fault{
		{Kind: fault.ReadError, Disk: 0, From: 0, Prob: 0.5, Retries: 0},
	}}
	outs, err := ReplayRounds(faultCfg(10, plan), 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	total, lost := 0, 0
	for _, o := range outs {
		total += 10
		lost += o.Lost
		if o.Lost > o.Glitches {
			t.Fatalf("round %d: lost %d > glitches %d", o.Round, o.Lost, o.Glitches)
		}
	}
	// Retries=0 means every failed first read is lost: expect ≈ half.
	if frac := float64(lost) / float64(total); frac < 0.4 || frac > 0.6 {
		t.Errorf("lost fraction = %v, want ≈0.5", frac)
	}
}

func TestStationaryEffectsResolveAtFaultRound(t *testing.T) {
	plan := &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Latency, Disk: 0, From: 100, Until: 200, Factor: 2},
	}}
	inWindow := faultCfg(26, plan)
	inWindow.FaultRound = 150
	outWindow := faultCfg(26, plan)
	outWindow.FaultRound = 50
	pi, err := EstimatePLate(inWindow, 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	po, err := EstimatePLate(outWindow, 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	if pi.P < 0.9 {
		t.Errorf("p_late inside the fault window = %v, want ≈1", pi.P)
	}
	if po.P > 0.05 {
		t.Errorf("p_late outside the fault window = %v, want small", po.P)
	}
}
