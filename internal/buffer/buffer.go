// Package buffer implements the client-buffering extension the paper
// sketches as future work (§6): clients with memory for more than the
// minimum one fragment can absorb late deliveries, converting round
// overruns into invisible delays instead of display glitches.
//
// The mechanism: a client that delays display start by s extra rounds
// (prefilling its buffer with s fragments of headroom) only perceives a
// glitch when a fragment is more than s rounds late. On the server side a
// work-conserving scheduler can additionally start the next round's sweep
// as soon as the current one finishes, banking idle time as slack.
//
// The analytic side bounds the visible-glitch probability per round by
// the Chernoff tail of the sweep at the extended deadline (1+s)·t:
//
//	b_visible(N, t, s) = (1/N) Σ_{k=1..N} P[T_k ≥ (1+s)·t]
//
// treating rounds independently — a good approximation validated by the
// package's simulator, which models overrun carry-over exactly.
package buffer

import (
	"cmp"
	"errors"
	"math"
	"slices"

	"mzqos/internal/dist"
	"mzqos/internal/model"
	"mzqos/internal/sim"
)

// ErrConfig is returned for invalid buffering configurations.
var ErrConfig = errors.New("buffer: invalid configuration")

// VisibleGlitchBound bounds the probability that a stream with s rounds of
// client-side slack perceives a glitch in one round (the s=0 case is the
// paper's b_glitch of eq. 3.3.3).
func VisibleGlitchBound(m *model.Model, n, slackRounds int) (float64, error) {
	if m == nil || n <= 0 || slackRounds < 0 {
		return 0, ErrConfig
	}
	deadline := m.RoundLength() * float64(1+slackRounds)
	var sum float64
	for k := 1; k <= n; k++ {
		b, err := m.LateBoundAt(k, deadline)
		if err != nil {
			return 0, err
		}
		sum += b
	}
	v := sum / float64(n)
	if v > 1 {
		v = 1
	}
	return v, nil
}

// NMaxBuffered returns the admission limit under a per-round
// visible-glitch threshold for clients with the given slack — the
// capacity gained by buffer memory. Beyond the tail criterion it enforces
// stability, E[T_N] < t: the independent-rounds bound is only meaningful
// when overruns do not accumulate round over round (an unstable sweep
// drifts later forever no matter how much the client buffers).
func NMaxBuffered(m *model.Model, slackRounds int, delta float64) (int, error) {
	if m == nil || slackRounds < 0 || !(delta > 0 && delta < 1) {
		return 0, ErrConfig
	}
	return m.NMaxWith(func(n int) (float64, error) {
		mean, _, err := m.RoundMoments(n)
		if err != nil {
			return 0, err
		}
		if mean >= m.RoundLength() {
			return 1, nil // unstable: reject regardless of the tail
		}
		return VisibleGlitchBound(m, n, slackRounds)
	}, delta)
}

// SimConfig configures the buffered-client simulator.
type SimConfig struct {
	// Sim is the underlying round workload (disk, sizes, round length, N).
	Sim sim.Config
	// SlackRounds is the client-side smoothing slack s.
	SlackRounds int
	// WorkConserving starts the next sweep as soon as the current one
	// finishes (early service banks additional slack); when false, sweeps
	// are gated to round boundaries as in the paper's base architecture.
	WorkConserving bool
}

// SimResult reports buffered playback quality.
type SimResult struct {
	// Rounds simulated.
	Rounds int
	// VisibleGlitchRate is the fraction of fragments delivered too late
	// for their (slack-shifted) display instant.
	VisibleGlitchRate float64
	// RawLateRate is the fraction of fragments that missed their own
	// round boundary (the paper's glitch definition; independent of s).
	RawLateRate float64
	// MeanOverrun is the average amount (seconds) by which sweeps ran
	// past their round end, over sweeps that overran.
	MeanOverrun float64
}

// Simulate plays `rounds` rounds with exact carry-over of sweep overruns:
// sweep r begins at max(r·t, completion of sweep r−1) (or exactly at
// completion when work-conserving), and the fragment of stream i in round
// r must complete by (r+1+s)·t to be displayed seamlessly.
func Simulate(cfg SimConfig, rounds int, seed uint64) (SimResult, error) {
	if cfg.Sim.Disk == nil || cfg.Sim.Sizes.Dist == nil || !(cfg.Sim.RoundLength > 0) ||
		cfg.Sim.N < 1 || cfg.SlackRounds < 0 || rounds < 1 {
		return SimResult{}, ErrConfig
	}
	rng := dist.NewRand(seed, seed^0x62756666)
	t := cfg.Sim.RoundLength
	n := cfg.Sim.N
	type req struct {
		cyl  int
		zone int
		size float64
	}
	reqs := make([]req, n)
	var (
		clock       float64
		visible     int
		rawLate     int
		overrunSum  float64
		overrunCnt  int
		totalServed int
	)
	for r := 0; r < rounds; r++ {
		roundStart := float64(r) * t
		if cfg.WorkConserving {
			clock = math.Max(clock, roundStart)
		} else {
			// Gated: never start before the boundary; carry only overrun.
			if clock < roundStart {
				clock = roundStart
			}
		}
		start := clock
		for i := range reqs {
			loc := cfg.Sim.Disk.SampleLocation(rng)
			reqs[i] = req{cyl: loc.Cylinder, zone: loc.Zone, size: cfg.Sim.Sizes.Sample(rng)}
		}
		slices.SortFunc(reqs, func(a, b req) int { return cmp.Compare(a.cyl, b.cyl) })
		arm := 0
		deadlineRaw := roundStart + t
		deadlineVisible := roundStart + t*float64(1+cfg.SlackRounds)
		for _, q := range reqs {
			d := float64(q.cyl - arm)
			if d < 0 {
				d = -d
			}
			clock += cfg.Sim.Disk.Seek.Time(d)
			clock += rng.Float64() * cfg.Sim.Disk.RotationTime
			clock += cfg.Sim.Disk.TransferTime(q.size, q.zone)
			arm = q.cyl
			totalServed++
			if clock > deadlineRaw {
				rawLate++
			}
			if clock > deadlineVisible {
				visible++
			}
		}
		if clock > deadlineRaw {
			overrunSum += clock - deadlineRaw
			overrunCnt++
		}
		_ = start
	}
	res := SimResult{Rounds: rounds}
	if totalServed > 0 {
		res.VisibleGlitchRate = float64(visible) / float64(totalServed)
		res.RawLateRate = float64(rawLate) / float64(totalServed)
	}
	if overrunCnt > 0 {
		res.MeanOverrun = overrunSum / float64(overrunCnt)
	}
	return res, nil
}

// ClientBufferBytes returns the client memory needed for s rounds of slack
// at the given size model's mean rate, including the paper's minimum
// double-buffer (one fragment being displayed, one arriving).
func ClientBufferBytes(meanFragment float64, slackRounds int) float64 {
	return meanFragment * float64(2+slackRounds)
}
