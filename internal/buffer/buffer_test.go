package buffer

import (
	"testing"

	"mzqos/internal/disk"
	"mzqos/internal/model"
	"mzqos/internal/sim"
	"mzqos/internal/workload"
)

func paperModel(t testing.TB) *model.Model {
	t.Helper()
	m, err := model.New(model.Config{
		Disk:        disk.QuantumViking21(),
		Sizes:       workload.PaperSizes(),
		RoundLength: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestVisibleGlitchBoundMatchesBaseAtZeroSlack(t *testing.T) {
	m := paperModel(t)
	b0, err := VisibleGlitchBound(m, 26, 0)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := m.GlitchBound(26)
	if err != nil {
		t.Fatal(err)
	}
	if diff := b0 - bg; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("s=0 visible bound %v != base glitch bound %v", b0, bg)
	}
}

func TestSlackShrinksGlitchBound(t *testing.T) {
	m := paperModel(t)
	prev := 2.0
	for s := 0; s <= 3; s++ {
		b, err := VisibleGlitchBound(m, 28, s)
		if err != nil {
			t.Fatal(err)
		}
		if b >= prev {
			t.Errorf("slack %d: bound %v not below previous %v", s, b, prev)
		}
		prev = b
	}
	// One round of slack already crushes the visible-glitch probability:
	// the sweep would have to overrun by a whole round.
	b1, _ := VisibleGlitchBound(m, 28, 1)
	if b1 > 1e-9 {
		t.Errorf("one-round slack bound = %v, expected tiny", b1)
	}
}

func TestNMaxBufferedGrowsWithSlack(t *testing.T) {
	m := paperModel(t)
	n0, err := NMaxBuffered(m, 0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := NMaxBuffered(m, 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !(n1 > n0) {
		t.Errorf("slack did not grow admission: %d -> %d", n0, n1)
	}
	// Capacity is ceilinged by sweep stability (E[T_N] < t ⇒ N ≈ 33 on
	// this configuration), however much the client buffers.
	if n1 > 33 {
		t.Errorf("buffered N_max = %d exceeds the stability ceiling", n1)
	}
	n5, err := NMaxBuffered(m, 5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if n5 > 33 {
		t.Errorf("deep-buffer N_max = %d exceeds the stability ceiling", n5)
	}
}

func TestBoundValidation(t *testing.T) {
	m := paperModel(t)
	if _, err := VisibleGlitchBound(nil, 5, 0); err != ErrConfig {
		t.Errorf("nil model err = %v", err)
	}
	if _, err := VisibleGlitchBound(m, 0, 0); err != ErrConfig {
		t.Errorf("n=0 err = %v", err)
	}
	if _, err := VisibleGlitchBound(m, 5, -1); err != ErrConfig {
		t.Errorf("negative slack err = %v", err)
	}
	if _, err := NMaxBuffered(m, 0, 0); err != ErrConfig {
		t.Errorf("delta=0 err = %v", err)
	}
}

func simCfg(n int) sim.Config {
	return sim.Config{
		Disk:        disk.QuantumViking21(),
		Sizes:       workload.PaperSizes(),
		RoundLength: 1,
		N:           n,
	}
}

func TestSimulateSlackEliminatesVisibleGlitches(t *testing.T) {
	// At N=30 (past the paper's limit) raw lateness is common, but one
	// round of client slack hides nearly all of it.
	res0, err := Simulate(SimConfig{Sim: simCfg(30)}, 4000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res0.RawLateRate == 0 {
		t.Fatal("expected raw lateness at N=30")
	}
	if res0.VisibleGlitchRate != res0.RawLateRate {
		t.Errorf("s=0: visible %v != raw %v", res0.VisibleGlitchRate, res0.RawLateRate)
	}
	res1, err := Simulate(SimConfig{Sim: simCfg(30), SlackRounds: 1}, 4000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !(res1.VisibleGlitchRate < res0.VisibleGlitchRate/5) {
		t.Errorf("slack 1 visible rate %v vs raw %v: expected large reduction",
			res1.VisibleGlitchRate, res0.VisibleGlitchRate)
	}
}

func TestSimulateBoundDominates(t *testing.T) {
	m := paperModel(t)
	for _, s := range []int{0, 1} {
		res, err := Simulate(SimConfig{Sim: simCfg(28), SlackRounds: s}, 6000, 21)
		if err != nil {
			t.Fatal(err)
		}
		b, err := VisibleGlitchBound(m, 28, s)
		if err != nil {
			t.Fatal(err)
		}
		if res.VisibleGlitchRate > b+0.005 {
			t.Errorf("slack %d: simulated %v above bound %v", s, res.VisibleGlitchRate, b)
		}
	}
}

func TestSimulateOverrunAccounting(t *testing.T) {
	res, err := Simulate(SimConfig{Sim: simCfg(32)}, 3000, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.RawLateRate == 0 {
		t.Error("N=32 should overrun sometimes")
	}
	if !(res.MeanOverrun > 0) {
		t.Error("mean overrun should be positive when overruns happen")
	}
	if res.MeanOverrun > 0.5 {
		t.Errorf("mean overrun %v s looks too large for N=32", res.MeanOverrun)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(SimConfig{}, 10, 1); err != ErrConfig {
		t.Errorf("empty config err = %v", err)
	}
	if _, err := Simulate(SimConfig{Sim: simCfg(5), SlackRounds: -1}, 10, 1); err != ErrConfig {
		t.Errorf("negative slack err = %v", err)
	}
	if _, err := Simulate(SimConfig{Sim: simCfg(5)}, 0, 1); err != ErrConfig {
		t.Errorf("zero rounds err = %v", err)
	}
}

func TestClientBufferBytes(t *testing.T) {
	// Minimum double buffer at s=0, one extra fragment per slack round.
	if ClientBufferBytes(200, 0) != 400 {
		t.Error("double buffer wrong")
	}
	if ClientBufferBytes(200, 3) != 1000 {
		t.Error("slack buffer wrong")
	}
}

func TestWorkConservingNotWorse(t *testing.T) {
	gated, err := Simulate(SimConfig{Sim: simCfg(30), SlackRounds: 1}, 4000, 31)
	if err != nil {
		t.Fatal(err)
	}
	wc, err := Simulate(SimConfig{Sim: simCfg(30), SlackRounds: 1, WorkConserving: true}, 4000, 31)
	if err != nil {
		t.Fatal(err)
	}
	if wc.VisibleGlitchRate > gated.VisibleGlitchRate+0.003 {
		t.Errorf("work-conserving visible rate %v above gated %v",
			wc.VisibleGlitchRate, gated.VisibleGlitchRate)
	}
}
