// Package disk models multi-zone disk drives: zone geometry with
// per-zone track capacities and transfer rates, the two-regime seek-time
// curve of Ruemmler–Wilkes [RW94], byte-address to (zone, cylinder)
// mapping under uniform data placement, the Oyang worst-case SCAN seek
// bound [Oya95], and the transfer-rate distribution induced by zoning
// (§3.2 of the paper, eq. 3.2.1–3.2.6).
//
// The same geometry drives both the analytic model (internal/model) and
// the detailed simulator (internal/sim), so model-vs-simulation
// comparisons exercise exactly the same hardware description.
package disk

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
)

// ErrGeometry is returned for invalid disk geometries.
var ErrGeometry = errors.New("disk: invalid geometry")

// Zone is a group of adjacent cylinders that share a track capacity. Zones
// are ordered innermost first; outer zones hold more sectors per track and
// therefore transfer faster at constant angular velocity.
type Zone struct {
	// Tracks is the number of cylinders in the zone (one track per
	// cylinder in this model; multiple surfaces fold into TrackCapacity).
	Tracks int
	// TrackCapacity is the usable bytes per track.
	TrackCapacity float64
}

// SeekCurve is the two-regime seek-time function of [RW94] used by the
// paper (Table 1): proportional to sqrt(distance) for short seeks and
// linear beyond a threshold distance (both in cylinders):
//
//	seek(d) = A1 + B1·√d   for 0 < d < Threshold
//	seek(d) = A2 + B2·d    for d ≥ Threshold
//	seek(0) = 0
type SeekCurve struct {
	A1, B1    float64
	A2, B2    float64
	Threshold float64
}

// Time returns the seek time in seconds for a distance of d cylinders.
func (c SeekCurve) Time(d float64) float64 {
	if d <= 0 {
		return 0
	}
	if d < c.Threshold {
		return c.A1 + c.B1*math.Sqrt(d)
	}
	return c.A2 + c.B2*d
}

// MaxTime returns the full-stroke seek time for a disk with cyl cylinders.
func (c SeekCurve) MaxTime(cyl int) float64 {
	return c.Time(float64(cyl - 1))
}

// Geometry describes one disk drive.
type Geometry struct {
	// Name identifies the profile (e.g. "Quantum Viking 2.1").
	Name string
	// RotationTime is the time for one revolution, in seconds (ROT).
	RotationTime float64
	// Zones lists the zones from innermost (index 0) to outermost.
	// Cylinders are numbered starting at 0 in the innermost zone.
	Zones []Zone
	// Seek is the seek-time curve.
	Seek SeekCurve

	cumBytes []float64 // cumulative capacity at the end of each zone
	cumCyl   []int     // cumulative cylinder count at the end of each zone
}

// New validates and finalizes a geometry (computing the internal cumulative
// maps used by address translation).
func New(name string, rot float64, zones []Zone, seek SeekCurve) (*Geometry, error) {
	if !(rot > 0) || len(zones) == 0 {
		return nil, ErrGeometry
	}
	g := &Geometry{Name: name, RotationTime: rot, Zones: append([]Zone(nil), zones...), Seek: seek}
	g.cumBytes = make([]float64, len(zones))
	g.cumCyl = make([]int, len(zones))
	var bytes float64
	var cyl int
	for i, z := range zones {
		if z.Tracks <= 0 || !(z.TrackCapacity > 0) {
			return nil, ErrGeometry
		}
		if i > 0 && z.TrackCapacity < zones[i-1].TrackCapacity {
			return nil, fmt.Errorf("%w: zone capacities must be nondecreasing outward", ErrGeometry)
		}
		bytes += float64(z.Tracks) * z.TrackCapacity
		cyl += z.Tracks
		g.cumBytes[i] = bytes
		g.cumCyl[i] = cyl
	}
	return g, nil
}

// Cylinders returns the total number of cylinders (CYL).
func (g *Geometry) Cylinders() int { return g.cumCyl[len(g.cumCyl)-1] }

// Capacity returns the total usable capacity in bytes.
func (g *Geometry) Capacity() float64 { return g.cumBytes[len(g.cumBytes)-1] }

// ZoneCount returns the number of zones (Z).
func (g *Geometry) ZoneCount() int { return len(g.Zones) }

// TransferRate returns the sustained transfer rate of zone i (bytes/second):
// R_i = C_i / ROT (eq. 3.2.3's discrete form).
func (g *Geometry) TransferRate(zone int) float64 {
	return g.Zones[zone].TrackCapacity / g.RotationTime
}

// MinRate returns the innermost-zone transfer rate (the floor every
// admitted stream's bandwidth must stay below, §2.2).
func (g *Geometry) MinRate() float64 { return g.TransferRate(0) }

// MaxRate returns the outermost-zone transfer rate.
func (g *Geometry) MaxRate() float64 { return g.TransferRate(len(g.Zones) - 1) }

// MeanTrackCapacity returns the average track capacity across cylinders.
func (g *Geometry) MeanTrackCapacity() float64 {
	return g.Capacity() / float64(g.Cylinders())
}

// ZoneOfCylinder returns the zone index containing the given cylinder.
func (g *Geometry) ZoneOfCylinder(cyl int) int {
	for i, c := range g.cumCyl {
		if cyl < c {
			return i
		}
	}
	return len(g.Zones) - 1
}

// Location is a physical position on the disk.
type Location struct {
	Zone     int
	Cylinder int
}

// Locate maps a byte offset in [0, Capacity) to its zone and cylinder under
// sequential layout from cylinder 0 (innermost) outward.
func (g *Geometry) Locate(offset float64) (Location, error) {
	if offset < 0 || offset >= g.Capacity() {
		return Location{}, fmt.Errorf("%w: offset %g outside [0, %g)", ErrGeometry, offset, g.Capacity())
	}
	var prevBytes float64
	var prevCyl int
	for i, z := range g.Zones {
		if offset < g.cumBytes[i] {
			track := int((offset - prevBytes) / z.TrackCapacity)
			if track >= z.Tracks {
				track = z.Tracks - 1
			}
			return Location{Zone: i, Cylinder: prevCyl + track}, nil
		}
		prevBytes = g.cumBytes[i]
		prevCyl = g.cumCyl[i]
	}
	return Location{Zone: len(g.Zones) - 1, Cylinder: g.Cylinders() - 1}, nil
}

// SampleLocation draws a location uniformly over the disk's bytes — the
// paper's placement assumption ("data is uniformly distributed over all
// sectors of the disk", §2.2) under which a request hits zone i with
// probability C_i·tracks_i/Capacity.
func (g *Geometry) SampleLocation(rng *rand.Rand) Location {
	loc, _ := g.Locate(rng.Float64() * g.Capacity())
	return loc
}

// TransferTime returns the time to transfer size bytes from the given zone.
func (g *Geometry) TransferTime(size float64, zone int) float64 {
	return size / g.TransferRate(zone)
}

// SeekBound returns the Oyang [Oya95] upper bound on the total SCAN seek
// time for n requests: the total is maximized at equidistant positions,
// i.e. n+1 seeks of CYL/(n+1) cylinders each. This is the constant SEEK of
// §3.1; the paper notes the bound remains valid for multi-zone disks.
func (g *Geometry) SeekBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	d := float64(g.Cylinders()) / float64(n+1)
	return float64(n+1) * g.Seek.Time(d)
}

// SweepSeekTime returns the total seek time of one SCAN sweep that starts
// with the arm at cylinder `start` and visits the given cylinders in
// ascending order. Positions need not be sorted; the slice is not modified.
func (g *Geometry) SweepSeekTime(start int, cylinders []int) float64 {
	if len(cylinders) == 0 {
		return 0
	}
	sorted := append([]int(nil), cylinders...)
	insertionSort(sorted)
	var total float64
	cur := start
	for _, c := range sorted {
		total += g.Seek.Time(math.Abs(float64(c - cur)))
		cur = c
	}
	return total
}

// insertionSort sorts small int slices in place without pulling in sort for
// the hot simulation path (request counts per round are ~10–50).
func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
