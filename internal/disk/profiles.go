package disk

// QuantumViking21 returns the disk profile of Table 1 of the paper: a
// Quantum Viking 2.1 with 6720 cylinders in 15 equal-sized zones whose
// track capacities increase linearly from 58368 bytes (innermost) to
// 95744 bytes (outermost), 8.34 ms revolution time, and the two-regime
// seek curve
//
//	seek(d) = 1.867·10⁻³ + 1.315·10⁻⁴·√d   for d < 1344
//	seek(d) = 3.8635·10⁻³ + 2.1·10⁻⁶·d     for d ≥ 1344.
func QuantumViking21() *Geometry {
	const (
		cyl  = 6720
		nz   = 15
		cmin = 58368.0
		cmax = 95744.0
		rot  = 0.00834
	)
	zones := make([]Zone, nz)
	for i := range zones {
		zones[i] = Zone{
			Tracks:        cyl / nz,
			TrackCapacity: cmin + (cmax-cmin)*float64(i)/float64(nz-1),
		}
	}
	g, err := New("Quantum Viking 2.1", rot, zones, SeekCurve{
		A1: 1.867e-3, B1: 1.315e-4,
		A2: 3.8635e-3, B2: 2.1e-6,
		Threshold: 1344,
	})
	if err != nil {
		panic("disk: QuantumViking21 profile invalid: " + err.Error())
	}
	return g
}

// Synthetic2000 returns a year-2000-class synthetic profile: a 10k RPM
// drive (6 ms revolution) with 12000 cylinders in 24 zones, track
// capacities from 160 KB to 320 KB (the factor-of-two outer/inner ratio
// the paper calls typical, §2.2), and a proportionally faster seek curve.
// Useful for sweeps showing how the guarantees scale across drive
// generations.
func Synthetic2000() *Geometry {
	const (
		cyl  = 12000
		nz   = 24
		cmin = 160000.0
		cmax = 320000.0
		rot  = 0.006
	)
	zones := make([]Zone, nz)
	for i := range zones {
		zones[i] = Zone{
			Tracks:        cyl / nz,
			TrackCapacity: cmin + (cmax-cmin)*float64(i)/float64(nz-1),
		}
	}
	g, err := New("Synthetic 10k (2000)", rot, zones, SeekCurve{
		A1: 1.0e-3, B1: 0.9e-4,
		A2: 2.4e-3, B2: 0.7e-6,
		Threshold: 2400,
	})
	if err != nil {
		panic("disk: Synthetic2000 profile invalid: " + err.Error())
	}
	return g
}

// SingleZone returns a conventional one-zone disk with the given cylinder
// count, rotation time, uniform track capacity, and seek curve. The §3.1
// model is the special case of the §3.2 model on such a geometry.
func SingleZone(name string, cylinders int, rot, trackCapacity float64, seek SeekCurve) (*Geometry, error) {
	return New(name, rot, []Zone{{Tracks: cylinders, TrackCapacity: trackCapacity}}, seek)
}

// Uniformized returns the single-zone disk obtained by replacing every
// zone of g with the mean track capacity — the "ignore zoning" model of the
// paper's predecessor [NMW97], used by the zoning ablation (A4). The seek
// curve, rotation time, and total capacity are preserved.
func (g *Geometry) Uniformized() *Geometry {
	u, err := SingleZone(g.Name+" (uniformized)", g.Cylinders(), g.RotationTime, g.MeanTrackCapacity(), g.Seek)
	if err != nil {
		panic("disk: Uniformized invalid: " + err.Error())
	}
	return u
}

// Scaled returns a geometry with every track capacity multiplied by factor
// (>1 models a denser media generation), keeping zone structure and seek
// behaviour. Useful for capacity-planning sweeps.
func (g *Geometry) Scaled(name string, factor float64) (*Geometry, error) {
	if !(factor > 0) {
		return nil, ErrGeometry
	}
	zones := make([]Zone, len(g.Zones))
	for i, z := range g.Zones {
		zones[i] = Zone{Tracks: z.Tracks, TrackCapacity: z.TrackCapacity * factor}
	}
	return New(name, g.RotationTime, zones, g.Seek)
}
