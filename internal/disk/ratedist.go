package disk

import "math"

// ZoneHitProb returns the probability that a uniformly placed request hits
// zone i: (tracks_i · C_i) / Capacity. For the paper's equal-tracks
// assumption this reduces to C_i / ΣC_j (eq. 3.2.1).
func (g *Geometry) ZoneHitProb(zone int) float64 {
	z := g.Zones[zone]
	return float64(z.Tracks) * z.TrackCapacity / g.Capacity()
}

// RateCDF returns the exact discrete distribution function of the transfer
// rate: P[R ≤ r] = Σ_{i: R_i ≤ r} ZoneHitProb(i) (eq. 3.2.1).
func (g *Geometry) RateCDF(r float64) float64 {
	var p float64
	for i := range g.Zones {
		if g.TransferRate(i) <= r {
			p += g.ZoneHitProb(i)
		}
	}
	return p
}

// InvRateMoments returns E[1/R] and E[1/R²] under the zone-hit
// distribution. These are the only rate functionals the transfer-time
// moment matching needs: for a request of size S independent of its rate,
//
//	E[T_trans]   = E[S]·E[1/R]
//	E[T_trans²]  = E[S²]·E[1/R²]
//
// For equal-track zones E[1/R] collapses to Z·ROT/ΣC_i, i.e. the harmonic
// structure the paper's continuous treatment approximates.
func (g *Geometry) InvRateMoments() (inv, inv2 float64) {
	for i := range g.Zones {
		p := g.ZoneHitProb(i)
		r := g.TransferRate(i)
		inv += p / r
		inv2 += p / (r * r)
	}
	return inv, inv2
}

// ContinuousRatePDF returns the continuous approximation of the
// transfer-rate density used by the paper (eq. 3.2.6, re-derived with the
// typesetting slips fixed): treating the zone index as continuous on
// [1, Z] with linearly increasing capacity, the rate r on
// [rmin, rmax] = [Cmin, Cmax]/ROT has density
//
//	f_rate(r) = 2r / (rmax² − rmin²)
//
// (capacity-proportional selection of a linear capacity profile). The
// exact discrete law converges to this as Z grows; Z=15 is already within
// a fraction of a percent on the moments.
func (g *Geometry) ContinuousRatePDF(r float64) float64 {
	rmin, rmax := g.MinRate(), g.MaxRate()
	if r < rmin || r > rmax || rmax <= rmin {
		return 0
	}
	return 2 * r / (rmax*rmax - rmin*rmin)
}

// ContinuousRateCDF returns the continuous approximation of the rate CDF
// (the fixed form of eq. 3.2.5): (r² − rmin²)/(rmax² − rmin²).
func (g *Geometry) ContinuousRateCDF(r float64) float64 {
	rmin, rmax := g.MinRate(), g.MaxRate()
	switch {
	case r <= rmin || rmax <= rmin:
		if r >= rmax {
			return 1
		}
		return 0
	case r >= rmax:
		return 1
	default:
		return (r*r - rmin*rmin) / (rmax*rmax - rmin*rmin)
	}
}

// ContinuousInvRateMoments returns E[1/R] and E[1/R²] under the continuous
// rate density: E[1/R] = 2(rmax−rmin)/(rmax²−rmin²) = 2/(rmin+rmax) and
// E[1/R²] = 2·ln(rmax/rmin)/(rmax²−rmin²).
func (g *Geometry) ContinuousInvRateMoments() (inv, inv2 float64) {
	rmin, rmax := g.MinRate(), g.MaxRate()
	if rmax <= rmin {
		return 1 / rmin, 1 / (rmin * rmin)
	}
	d2 := rmax*rmax - rmin*rmin
	return 2 / (rmin + rmax), 2 * math.Log(rmax/rmin) / d2
}
