package disk

import (
	"math"
	"testing"
	"testing/quick"

	"mzqos/internal/dist"
)

func TestUniformAccessMatchesZoneHitProb(t *testing.T) {
	g := QuantumViking21()
	p := UniformAccess(g)
	if !p.Valid(g) {
		t.Fatal("uniform profile invalid")
	}
	for i := range p {
		if math.Abs(p[i]-g.ZoneHitProb(i)) > 1e-12 {
			t.Errorf("zone %d: %v != %v", i, p[i], g.ZoneHitProb(i))
		}
	}
	inv, inv2 := g.InvRateMomentsUnder(p)
	di, di2 := g.InvRateMoments()
	if math.Abs(inv-di) > 1e-15 || math.Abs(inv2-di2) > 1e-20 {
		t.Error("uniform profile moments differ from base moments")
	}
}

func TestSkewedAccessShiftsRates(t *testing.T) {
	g := QuantumViking21()
	hot := SkewedAccess(g, 3)   // hot data on outer, fast zones
	cold := SkewedAccess(g, -3) // inverse
	zero := SkewedAccess(g, 0)
	if !hot.Valid(g) || !cold.Valid(g) || !zero.Valid(g) {
		t.Fatal("skewed profiles invalid")
	}
	invHot, _ := g.InvRateMomentsUnder(hot)
	invCold, _ := g.InvRateMomentsUnder(cold)
	invUni, _ := g.InvRateMomentsUnder(zero)
	// Faster effective service when hot data sits on fast zones.
	if !(invHot < invUni && invUni < invCold) {
		t.Errorf("E[1/R] ordering wrong: hot %v, uniform %v, cold %v", invHot, invUni, invCold)
	}
	// Zero skew equals uniform.
	for i := range zero {
		if math.Abs(zero[i]-UniformAccess(g)[i]) > 1e-12 {
			t.Errorf("zero skew differs from uniform at zone %d", i)
		}
	}
}

func TestOrganPipeAccess(t *testing.T) {
	g := QuantumViking21()
	// Concentration at 3/4 of the disk (between middle and outermost, as
	// the paper prescribes).
	p := OrganPipeAccess(g, 0.75, 8)
	if !p.Valid(g) {
		t.Fatal("organ-pipe profile invalid")
	}
	center := g.MeanSeekCenterUnder(p)
	if math.Abs(center-0.75) > 0.12 {
		t.Errorf("mean access position = %v, want near 0.75", center)
	}
	// More concentrated profiles pull the mass tighter around the peak.
	loose := OrganPipeAccess(g, 0.75, 1)
	varOf := func(pr AccessProfile) float64 {
		var first, mean, second float64
		for i, z := range g.Zones {
			mid := (first + float64(z.Tracks)/2) / float64(g.Cylinders())
			first += float64(z.Tracks)
			mean += pr[i] * mid
			second += pr[i] * mid * mid
		}
		return second - mean*mean
	}
	if !(varOf(p) < varOf(loose)) {
		t.Errorf("concentration did not tighten the profile: %v vs %v", varOf(p), varOf(loose))
	}
	// Degenerate inputs are clamped rather than erroring.
	if !OrganPipeAccess(g, -1, -1).Valid(g) {
		t.Error("clamped organ-pipe profile invalid")
	}
}

func TestSampleLocationUnderFrequencies(t *testing.T) {
	g := QuantumViking21()
	p := SkewedAccess(g, 2)
	rng := dist.NewRand(8, 9)
	counts := make([]int, g.ZoneCount())
	const n = 200000
	for i := 0; i < n; i++ {
		loc := g.SampleLocationUnder(p, rng)
		counts[loc.Zone]++
		if g.ZoneOfCylinder(loc.Cylinder) != loc.Zone {
			t.Fatalf("cylinder %d not in zone %d", loc.Cylinder, loc.Zone)
		}
	}
	for z := range counts {
		got := float64(counts[z]) / n
		if math.Abs(got-p[z]) > 0.005 {
			t.Errorf("zone %d frequency %v, want %v", z, got, p[z])
		}
	}
}

func TestAccessProfileValid(t *testing.T) {
	g := QuantumViking21()
	if (AccessProfile{0.5, 0.5}).Valid(g) {
		t.Error("wrong length should be invalid")
	}
	bad := make(AccessProfile, g.ZoneCount())
	bad[0] = 2
	if bad.Valid(g) {
		t.Error("non-normalized profile should be invalid")
	}
	neg := UniformAccess(g)
	neg[0] = -neg[0]
	if neg.Valid(g) {
		t.Error("negative weight should be invalid")
	}
}

// Property: every generated profile is a valid probability vector.
func TestGeneratedProfilesValid(t *testing.T) {
	g := QuantumViking21()
	prop := func(s, c, pos float64) bool {
		skew := math.Mod(s, 6)
		conc := math.Abs(math.Mod(c, 20))
		center := math.Abs(math.Mod(pos, 1))
		return SkewedAccess(g, skew).Valid(g) &&
			OrganPipeAccess(g, center, conc).Valid(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
