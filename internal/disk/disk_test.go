package disk

import (
	"math"
	"testing"
	"testing/quick"

	"mzqos/internal/dist"
)

func viking(t testing.TB) *Geometry {
	t.Helper()
	return QuantumViking21()
}

func TestVikingProfile(t *testing.T) {
	g := viking(t)
	if g.Cylinders() != 6720 {
		t.Errorf("Cylinders = %d, want 6720", g.Cylinders())
	}
	if g.ZoneCount() != 15 {
		t.Errorf("ZoneCount = %d, want 15", g.ZoneCount())
	}
	if g.Zones[0].TrackCapacity != 58368 {
		t.Errorf("innermost capacity = %v, want 58368", g.Zones[0].TrackCapacity)
	}
	if g.Zones[14].TrackCapacity != 95744 {
		t.Errorf("outermost capacity = %v, want 95744", g.Zones[14].TrackCapacity)
	}
	// Mean track capacity is (Cmin+Cmax)/2 for a linear profile.
	if math.Abs(g.MeanTrackCapacity()-77056) > 1e-6 {
		t.Errorf("MeanTrackCapacity = %v, want 77056", g.MeanTrackCapacity())
	}
	// Rate ratio outer/inner ≈ 1.64 for this drive (paper: "factor of two"
	// is typical; Table 1 gives 95744/58368).
	ratio := g.MaxRate() / g.MinRate()
	if math.Abs(ratio-95744.0/58368.0) > 1e-12 {
		t.Errorf("rate ratio = %v", ratio)
	}
}

func TestSeekCurveValues(t *testing.T) {
	g := viking(t)
	// Full-stroke seek ≈ 18 ms (the paper's Tseek^max in §4).
	if max := g.Seek.MaxTime(g.Cylinders()); math.Abs(max-0.018) > 3e-4 {
		t.Errorf("MaxTime = %v, want ≈0.018", max)
	}
	if g.Seek.Time(0) != 0 {
		t.Error("seek(0) should be 0")
	}
	// Continuity check near the regime threshold d=1344:
	below := g.Seek.Time(1343.999)
	above := g.Seek.Time(1344)
	if math.Abs(below-above) > 1e-4 {
		t.Errorf("seek curve jumps at threshold: %v vs %v", below, above)
	}
}

func TestSeekBoundPaperValue(t *testing.T) {
	g := viking(t)
	// §3.1: for N=27 the Oyang bound gives SEEK = 0.10932 s.
	if s := g.SeekBound(27); math.Abs(s-0.10932) > 2e-5 {
		t.Errorf("SeekBound(27) = %v, want 0.10932", s)
	}
	if g.SeekBound(0) != 0 {
		t.Error("SeekBound(0) should be 0")
	}
}

func TestSeekBoundDominatesSweeps(t *testing.T) {
	// Property (Oyang): the bound dominates the seek total of any actual
	// SCAN sweep over n positions starting from cylinder 0.
	g := QuantumViking21()
	rng := dist.NewRand(11, 13)
	prop := func(nRaw int, seed uint64) bool {
		n := 1 + abs(nRaw)%50
		r := dist.NewRand(seed, seed^0x9e3779b97f4a7c15)
		cyls := make([]int, n)
		for i := range cyls {
			cyls[i] = r.IntN(g.Cylinders())
		}
		return g.SweepSeekTime(0, cyls) <= g.SeekBound(n)+1e-12
	}
	_ = rng
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSweepSeekTimeOrderInvariance(t *testing.T) {
	g := viking(t)
	cyls := []int{5000, 100, 3000, 100, 6000}
	a := g.SweepSeekTime(0, cyls)
	b := g.SweepSeekTime(0, []int{100, 100, 3000, 5000, 6000})
	if math.Abs(a-b) > 1e-15 {
		t.Errorf("sweep time depends on input order: %v vs %v", a, b)
	}
	if g.SweepSeekTime(0, nil) != 0 {
		t.Error("empty sweep should cost 0")
	}
	// Input slice must not be mutated.
	if cyls[0] != 5000 {
		t.Error("SweepSeekTime mutated its input")
	}
}

func TestLocateRoundTrip(t *testing.T) {
	g := viking(t)
	// Offsets at zone boundaries map to the right zones.
	loc, err := g.Locate(0)
	if err != nil || loc.Zone != 0 || loc.Cylinder != 0 {
		t.Errorf("Locate(0) = %+v, %v", loc, err)
	}
	// Last byte.
	loc, err = g.Locate(g.Capacity() - 1)
	if err != nil || loc.Zone != 14 || loc.Cylinder != 6719 {
		t.Errorf("Locate(last) = %+v, %v", loc, err)
	}
	// Out of range.
	if _, err := g.Locate(-1); err == nil {
		t.Error("Locate(-1) should error")
	}
	if _, err := g.Locate(g.Capacity()); err == nil {
		t.Error("Locate(capacity) should error")
	}
}

func TestLocateZoneConsistency(t *testing.T) {
	g := viking(t)
	prop := func(u float64) bool {
		off := math.Abs(math.Mod(u, 1)) * (g.Capacity() - 1)
		loc, err := g.Locate(off)
		if err != nil {
			return false
		}
		return g.ZoneOfCylinder(loc.Cylinder) == loc.Zone &&
			loc.Cylinder >= 0 && loc.Cylinder < g.Cylinders()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSampleLocationZoneFrequencies(t *testing.T) {
	g := viking(t)
	rng := dist.NewRand(21, 22)
	counts := make([]int, g.ZoneCount())
	const n = 300000
	for i := 0; i < n; i++ {
		counts[g.SampleLocation(rng).Zone]++
	}
	for z := range counts {
		want := g.ZoneHitProb(z)
		got := float64(counts[z]) / n
		if math.Abs(got-want) > 0.004 {
			t.Errorf("zone %d hit freq = %v, want %v", z, got, want)
		}
	}
}

func TestZoneHitProbSumsToOne(t *testing.T) {
	g := viking(t)
	var sum float64
	for i := range g.Zones {
		sum += g.ZoneHitProb(i)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("zone hit probs sum to %v", sum)
	}
}

func TestRateCDF(t *testing.T) {
	g := viking(t)
	if g.RateCDF(0) != 0 {
		t.Error("RateCDF below min rate should be 0")
	}
	if math.Abs(g.RateCDF(g.MaxRate())-1) > 1e-12 {
		t.Errorf("RateCDF at max rate = %v", g.RateCDF(g.MaxRate()))
	}
	// First zone only.
	want := g.ZoneHitProb(0)
	if math.Abs(g.RateCDF(g.MinRate())-want) > 1e-12 {
		t.Errorf("RateCDF at min rate = %v, want %v", g.RateCDF(g.MinRate()), want)
	}
}

func TestInvRateMomentsAgainstSampling(t *testing.T) {
	g := viking(t)
	inv, inv2 := g.InvRateMoments()
	rng := dist.NewRand(31, 32)
	var w1, w2 dist.Welford
	for i := 0; i < 200000; i++ {
		r := g.TransferRate(g.SampleLocation(rng).Zone)
		w1.Add(1 / r)
		w2.Add(1 / (r * r))
	}
	if math.Abs(w1.Mean()-inv) > 0.002*inv {
		t.Errorf("E[1/R] = %v, sampled %v", inv, w1.Mean())
	}
	if math.Abs(w2.Mean()-inv2) > 0.004*inv2 {
		t.Errorf("E[1/R²] = %v, sampled %v", inv2, w2.Mean())
	}
}

func TestContinuousRateApproximation(t *testing.T) {
	g := viking(t)
	// The continuous density integrates to 1.
	var sum float64
	rmin, rmax := g.MinRate(), g.MaxRate()
	n := 10000
	dr := (rmax - rmin) / float64(n)
	for i := 0; i < n; i++ {
		sum += g.ContinuousRatePDF(rmin+(float64(i)+0.5)*dr) * dr
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("continuous rate PDF integrates to %v", sum)
	}
	// CDF endpoints.
	if g.ContinuousRateCDF(rmin) != 0 || g.ContinuousRateCDF(rmax) != 1 {
		t.Error("continuous CDF endpoints wrong")
	}
	// Discrete and continuous inverse-rate moments agree closely at Z=15.
	di, di2 := g.InvRateMoments()
	ci, ci2 := g.ContinuousInvRateMoments()
	if math.Abs(di-ci) > 0.01*di {
		t.Errorf("E[1/R]: discrete %v vs continuous %v", di, ci)
	}
	if math.Abs(di2-ci2) > 0.02*di2 {
		t.Errorf("E[1/R²]: discrete %v vs continuous %v", di2, ci2)
	}
}

func TestContinuousCDFMonotone(t *testing.T) {
	g := viking(t)
	prop := func(a, b float64) bool {
		rmin, rmax := g.MinRate(), g.MaxRate()
		x := rmin + math.Abs(math.Mod(a, 1))*(rmax-rmin)
		y := rmin + math.Abs(math.Mod(b, 1))*(rmax-rmin)
		if x > y {
			x, y = y, x
		}
		return g.ContinuousRateCDF(x) <= g.ContinuousRateCDF(y)+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSynthetic2000Profile(t *testing.T) {
	g := Synthetic2000()
	if g.Cylinders() != 12000 || g.ZoneCount() != 24 {
		t.Errorf("geometry: %d cylinders, %d zones", g.Cylinders(), g.ZoneCount())
	}
	if r := g.MaxRate() / g.MinRate(); math.Abs(r-2) > 1e-12 {
		t.Errorf("outer/inner rate ratio = %v, want 2", r)
	}
	// A 2000-class drive is strictly faster than the Viking everywhere.
	v := QuantumViking21()
	if !(g.MinRate() > v.MaxRate()) {
		t.Errorf("Synthetic2000 min rate %v not above Viking max %v", g.MinRate(), v.MaxRate())
	}
	if !(g.Seek.MaxTime(g.Cylinders()) < v.Seek.MaxTime(v.Cylinders())) {
		t.Error("Synthetic2000 full-stroke seek should be faster")
	}
	// The Oyang bound still dominates sweeps on the new profile.
	r := dist.NewRand(2, 3)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.IntN(40)
		cyls := make([]int, n)
		for i := range cyls {
			cyls[i] = r.IntN(g.Cylinders())
		}
		if g.SweepSeekTime(0, cyls) > g.SeekBound(n)+1e-12 {
			t.Fatalf("sweep exceeded Oyang bound at n=%d", n)
		}
	}
}

func TestSingleZoneAndUniformized(t *testing.T) {
	g := viking(t)
	u := g.Uniformized()
	if u.ZoneCount() != 1 {
		t.Errorf("Uniformized zones = %d", u.ZoneCount())
	}
	if u.Cylinders() != g.Cylinders() {
		t.Errorf("Uniformized cylinders = %d", u.Cylinders())
	}
	if math.Abs(u.Capacity()-g.Capacity()) > 1 {
		t.Errorf("Uniformized capacity = %v, want %v", u.Capacity(), g.Capacity())
	}
	inv, inv2 := u.InvRateMoments()
	r := u.MinRate()
	if math.Abs(inv-1/r) > 1e-18 || math.Abs(inv2-1/(r*r)) > 1e-25 {
		t.Error("single-zone inverse moments wrong")
	}
}

func TestScaled(t *testing.T) {
	g := viking(t)
	s, err := g.Scaled("2x", 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Capacity()-2*g.Capacity()) > 1 {
		t.Errorf("Scaled capacity = %v", s.Capacity())
	}
	if math.Abs(s.MinRate()-2*g.MinRate()) > 1e-9 {
		t.Errorf("Scaled min rate = %v", s.MinRate())
	}
	if _, err := g.Scaled("bad", 0); err == nil {
		t.Error("Scaled(0) should error")
	}
}

func TestNewValidation(t *testing.T) {
	seek := SeekCurve{A1: 1e-3, B1: 1e-4, A2: 2e-3, B2: 1e-6, Threshold: 100}
	if _, err := New("x", 0, []Zone{{Tracks: 1, TrackCapacity: 1}}, seek); err == nil {
		t.Error("zero rotation should error")
	}
	if _, err := New("x", 0.008, nil, seek); err == nil {
		t.Error("no zones should error")
	}
	if _, err := New("x", 0.008, []Zone{{Tracks: 0, TrackCapacity: 1}}, seek); err == nil {
		t.Error("zero tracks should error")
	}
	if _, err := New("x", 0.008, []Zone{
		{Tracks: 10, TrackCapacity: 200},
		{Tracks: 10, TrackCapacity: 100},
	}, seek); err == nil {
		t.Error("decreasing capacities outward should error")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
