package disk

import (
	"math"
	"math/rand/v2"
)

// AccessProfile gives the probability that a request hits each zone. The
// paper's base assumption — data uniformly distributed over all sectors —
// is the capacity-weighted profile; §2.2 points to frequency-aware layouts
// (generalized organ-pipe placement [Won83, TKKD96, TCG96b], hot data on
// fast zones [GKS96]) as future work, which these profiles model: the
// admission model and simulator both accept a profile in place of the
// uniform default.
type AccessProfile []float64

// Valid reports whether the profile matches the geometry and is a
// probability vector.
func (p AccessProfile) Valid(g *Geometry) bool {
	if len(p) != g.ZoneCount() {
		return false
	}
	var sum float64
	for _, w := range p {
		if !(w >= 0) || math.IsInf(w, 1) {
			return false
		}
		sum += w
	}
	return math.Abs(sum-1) < 1e-9
}

// UniformAccess returns the capacity-weighted profile — the paper's
// uniform-over-sectors placement (eq. 3.2.1).
func UniformAccess(g *Geometry) AccessProfile {
	p := make(AccessProfile, g.ZoneCount())
	for i := range p {
		p[i] = g.ZoneHitProb(i)
	}
	return p
}

// SkewedAccess returns a profile with access probability proportional to
// capacityShare · rate^skew: positive skew models hot data placed on the
// fast outer zones (the [GKS96] idea), negative skew the pathological
// inverse. skew = 0 reproduces UniformAccess.
func SkewedAccess(g *Geometry, skew float64) AccessProfile {
	p := make(AccessProfile, g.ZoneCount())
	var sum float64
	for i := range p {
		w := g.ZoneHitProb(i) * math.Pow(g.TransferRate(i)/g.MinRate(), skew)
		p[i] = w
		sum += w
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// OrganPipeAccess returns a generalized organ-pipe profile: access
// frequency peaks at the zone whose centre cylinder is at fraction
// center01 of the disk (0 = innermost edge, 1 = outermost) and decays
// geometrically with the cylinder distance, with decay rate per full disk
// width given by concentration (larger = more concentrated). The paper
// cites the optimum as "somewhere between the middle and the outermost
// track" — a trade between short seeks and high transfer rates.
func OrganPipeAccess(g *Geometry, center01, concentration float64) AccessProfile {
	if center01 < 0 {
		center01 = 0
	}
	if center01 > 1 {
		center01 = 1
	}
	if concentration < 0 {
		concentration = 0
	}
	cyl := float64(g.Cylinders())
	center := center01 * cyl
	p := make(AccessProfile, g.ZoneCount())
	var sum float64
	var first float64
	for i, z := range g.Zones {
		mid := first + float64(z.Tracks)/2
		first += float64(z.Tracks)
		dist := math.Abs(mid-center) / cyl
		w := g.ZoneHitProb(i) * math.Exp(-concentration*dist)
		p[i] = w
		sum += w
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// InvRateMomentsUnder returns E[1/R] and E[1/R²] under the given access
// profile — the only change zone-aware placement makes to the transfer
// moment pipeline.
func (g *Geometry) InvRateMomentsUnder(p AccessProfile) (inv, inv2 float64) {
	for i := range g.Zones {
		r := g.TransferRate(i)
		inv += p[i] / r
		inv2 += p[i] / (r * r)
	}
	return inv, inv2
}

// SampleLocationUnder draws a location with the zone chosen by the access
// profile and the track uniform within the zone.
func (g *Geometry) SampleLocationUnder(p AccessProfile, rng *rand.Rand) Location {
	u := rng.Float64()
	var acc float64
	zone := len(p) - 1
	for i, w := range p {
		acc += w
		if u < acc {
			zone = i
			break
		}
	}
	var firstCyl int
	for i := 0; i < zone; i++ {
		firstCyl += g.Zones[i].Tracks
	}
	return Location{Zone: zone, Cylinder: firstCyl + rng.IntN(g.Zones[zone].Tracks)}
}

// MeanSeekCenterUnder returns the expected cylinder of a request under the
// profile (normalized to [0,1]), a diagnostic for seek locality.
func (g *Geometry) MeanSeekCenterUnder(p AccessProfile) float64 {
	var first, mean float64
	for i, z := range g.Zones {
		mid := first + float64(z.Tracks)/2
		first += float64(z.Tracks)
		mean += p[i] * mid
	}
	return mean / float64(g.Cylinders())
}
