// Package numeric provides the one-dimensional numerical routines used by
// the analytic model: root finding, function minimization, quadrature, and
// numerical differentiation.
//
// The routines are deliberately simple, allocation-free, and deterministic.
// They operate on plain func(float64) float64 values and report failures as
// errors rather than panicking, so callers can fall back to coarser bounds
// when an optimization is ill-conditioned.
package numeric

import (
	"errors"
	"math"
)

// Common errors returned by the routines in this package.
var (
	// ErrNoBracket is returned when the caller-supplied interval does not
	// bracket a root (the function has the same sign at both ends).
	ErrNoBracket = errors.New("numeric: interval does not bracket a root")
	// ErrMaxIter is returned when an iteration limit is exhausted before
	// the requested tolerance is reached.
	ErrMaxIter = errors.New("numeric: maximum iterations exceeded")
	// ErrInvalidInterval is returned when an interval is empty or contains
	// non-finite endpoints.
	ErrInvalidInterval = errors.New("numeric: invalid interval")
)

const (
	defaultTol     = 1e-12
	defaultMaxIter = 200
)

// isFinite reports whether x is neither NaN nor infinite.
func isFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}
