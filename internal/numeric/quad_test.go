package numeric

import (
	"math"
	"testing"
)

func TestSimpsonPolynomial(t *testing.T) {
	// ∫₀¹ x³ dx = 1/4 (Simpson is exact on cubics per panel).
	v, err := Simpson(func(x float64) float64 { return x * x * x }, 0, 1, 1e-12)
	if err != nil {
		t.Fatalf("Simpson: %v", err)
	}
	if math.Abs(v-0.25) > 1e-12 {
		t.Errorf("Simpson cubic = %v, want 0.25", v)
	}
}

func TestSimpsonExp(t *testing.T) {
	v, err := Simpson(math.Exp, 0, 1, 1e-12)
	if err != nil {
		t.Fatalf("Simpson: %v", err)
	}
	want := math.E - 1
	if math.Abs(v-want) > 1e-10 {
		t.Errorf("Simpson exp = %v, want %v", v, want)
	}
}

func TestSimpsonPeaked(t *testing.T) {
	// Sharply peaked Gaussian: ∫ over [-1,1] of N(0, 0.01) density ≈ 1.
	sigma := 0.01
	f := func(x float64) float64 {
		return math.Exp(-x*x/(2*sigma*sigma)) / (sigma * math.Sqrt(2*math.Pi))
	}
	v, err := Simpson(f, -1, 1, 1e-10)
	if err != nil {
		t.Fatalf("Simpson: %v", err)
	}
	if math.Abs(v-1) > 1e-8 {
		t.Errorf("Simpson peaked Gaussian = %v, want 1", v)
	}
}

func TestSimpsonEmptyInterval(t *testing.T) {
	v, err := Simpson(math.Exp, 2, 2, 0)
	if err != nil || v != 0 {
		t.Errorf("Simpson empty = %v, %v; want 0, nil", v, err)
	}
}

func TestSimpsonInvalid(t *testing.T) {
	if _, err := Simpson(math.Exp, 3, 2, 0); err != ErrInvalidInterval {
		t.Errorf("Simpson err = %v, want ErrInvalidInterval", err)
	}
}

func TestGaussLegendre(t *testing.T) {
	// Exact for polynomials up to degree 39.
	f := func(x float64) float64 { return 5*math.Pow(x, 9) - 3*x*x + 1 }
	got := GaussLegendre(f, -2, 3)
	// ∫ 5x⁹ dx = x¹⁰/2; ∫ -3x² dx = -x³; ∫ 1 dx = x
	want := (math.Pow(3, 10)-math.Pow(-2, 10))/2 - (27 - (-8)) + 5
	if math.Abs(got-want) > 1e-8*math.Abs(want) {
		t.Errorf("GaussLegendre = %v, want %v", got, want)
	}
}

func TestCompositeGL(t *testing.T) {
	// ∫₀^π sin = 2
	got := CompositeGL(math.Sin, 0, math.Pi, 4)
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("CompositeGL sin = %v, want 2", got)
	}
	// n < 1 falls back to a single panel.
	got = CompositeGL(math.Sin, 0, math.Pi, 0)
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("CompositeGL(n=0) sin = %v, want 2", got)
	}
}

func TestSimpsonAgreesWithGL(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(-x) * math.Sin(3*x) }
	s, err := Simpson(f, 0, 5, 1e-12)
	if err != nil {
		t.Fatalf("Simpson: %v", err)
	}
	g := CompositeGL(f, 0, 5, 8)
	if math.Abs(s-g) > 1e-9 {
		t.Errorf("Simpson %v and CompositeGL %v disagree", s, g)
	}
}

func TestDerivative(t *testing.T) {
	d := Derivative(math.Sin, 1.2)
	if math.Abs(d-math.Cos(1.2)) > 1e-8 {
		t.Errorf("Derivative sin at 1.2 = %v, want %v", d, math.Cos(1.2))
	}
	d2 := SecondDerivative(math.Exp, 0.7)
	if math.Abs(d2-math.Exp(0.7)) > 1e-5 {
		t.Errorf("SecondDerivative exp at 0.7 = %v, want %v", d2, math.Exp(0.7))
	}
}
