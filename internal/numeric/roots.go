package numeric

import "math"

// Bisect finds a root of f in [a, b] by bisection. f(a) and f(b) must have
// opposite signs. The returned x satisfies |b-a| <= tol at termination (the
// bracket width, not the residual). tol <= 0 selects a default of 1e-12
// relative to the bracket magnitude.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	if !isFinite(a) || !isFinite(b) || a >= b {
		return 0, ErrInvalidInterval
	}
	if tol <= 0 {
		tol = defaultTol * math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, ErrNoBracket
	}
	for i := 0; i < 2000; i++ {
		m := a + (b-a)/2
		if b-a <= tol || m == a || m == b {
			return m, nil
		}
		fm := f(m)
		if fm == 0 {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return a + (b-a)/2, ErrMaxIter
}

// Brent finds a root of f in [a, b] using Brent's method (inverse quadratic
// interpolation with bisection fallback). f(a) and f(b) must have opposite
// signs. It converges superlinearly for smooth f while retaining the
// robustness of bisection.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	if !isFinite(a) || !isFinite(b) || a >= b {
		return 0, ErrInvalidInterval
	}
	if tol <= 0 {
		tol = defaultTol
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, ErrNoBracket
	}
	c, fc := a, fa
	d, e := b-a, b-a
	for i := 0; i < defaultMaxIter*5; i++ {
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*math.SmallestNonzeroFloat64*math.Abs(b) + tol/2
		xm := (c - b) / 2
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			// Attempt inverse quadratic interpolation.
			s := fb / fa
			var p, q float64
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			min1 := 3*xm*q - math.Abs(tol1*q)
			min2 := math.Abs(e * q)
			if 2*p < math.Min(min1, min2) {
				e, d = d, p/q
			} else {
				d, e = xm, xm
			}
		} else {
			d, e = xm, xm
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else if xm > 0 {
			b += tol1
		} else {
			b -= tol1
		}
		fb = f(b)
		if math.Signbit(fb) != math.Signbit(fc) {
			// keep the bracket [b, c]
		} else {
			c, fc = a, fa
			d, e = b-a, b-a
		}
	}
	return b, ErrMaxIter
}

// FindBracket expands an initial guess interval geometrically until it
// brackets a root of f, or returns ErrNoBracket after maxExpand doublings.
// It never expands past [lo, hi].
func FindBracket(f func(float64) float64, a, b, lo, hi float64, maxExpand int) (float64, float64, error) {
	if a >= b {
		return 0, 0, ErrInvalidInterval
	}
	fa, fb := f(a), f(b)
	for i := 0; i < maxExpand; i++ {
		if math.Signbit(fa) != math.Signbit(fb) || fa == 0 || fb == 0 {
			return a, b, nil
		}
		w := b - a
		if math.Abs(fa) < math.Abs(fb) {
			a = math.Max(lo, a-w)
			fa = f(a)
		} else {
			b = math.Min(hi, b+w)
			fb = f(b)
		}
	}
	if math.Signbit(fa) != math.Signbit(fb) {
		return a, b, nil
	}
	return 0, 0, ErrNoBracket
}
