package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBisectSimple(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	x, err := Bisect(f, 0, 2, 1e-12)
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if math.Abs(x-math.Sqrt2) > 1e-10 {
		t.Errorf("Bisect root = %v, want sqrt(2)=%v", x, math.Sqrt2)
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	f := func(x float64) float64 { return x }
	x, err := Bisect(f, 0, 1, 0)
	if err != nil || x != 0 {
		t.Errorf("Bisect endpoint root = %v, %v; want 0, nil", x, err)
	}
	x, err = Bisect(f, -1, 0, 0)
	if err != nil || x != 0 {
		t.Errorf("Bisect endpoint root = %v, %v; want 0, nil", x, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, 0); err != ErrNoBracket {
		t.Errorf("Bisect err = %v, want ErrNoBracket", err)
	}
}

func TestBisectInvalidInterval(t *testing.T) {
	f := func(x float64) float64 { return x }
	if _, err := Bisect(f, 1, 0, 0); err != ErrInvalidInterval {
		t.Errorf("Bisect err = %v, want ErrInvalidInterval", err)
	}
	if _, err := Bisect(f, math.NaN(), 1, 0); err != ErrInvalidInterval {
		t.Errorf("Bisect err with NaN = %v, want ErrInvalidInterval", err)
	}
}

func TestBrentRoot(t *testing.T) {
	cases := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"sqrt2", func(x float64) float64 { return x*x - 2 }, 0, 2, math.Sqrt2},
		{"cos", math.Cos, 1, 2, math.Pi / 2},
		{"cubic", func(x float64) float64 { return x*x*x - x - 2 }, 1, 2, 1.5213797068045675},
		{"expm1", func(x float64) float64 { return math.Exp(x) - 1 }, -1, 3, 0},
	}
	for _, tc := range cases {
		x, err := Brent(tc.f, tc.a, tc.b, 1e-13)
		if err != nil {
			t.Fatalf("%s: Brent: %v", tc.name, err)
		}
		if math.Abs(x-tc.want) > 1e-9 {
			t.Errorf("%s: Brent root = %v, want %v", tc.name, x, tc.want)
		}
	}
}

func TestBrentNoBracket(t *testing.T) {
	if _, err := Brent(func(x float64) float64 { return 1 + x*x }, -5, 5, 0); err != ErrNoBracket {
		t.Errorf("Brent err = %v, want ErrNoBracket", err)
	}
}

// Property: for random monotone lines with a root inside the bracket, Brent
// and Bisect agree with the analytic root.
func TestRootFindersAgreeOnLines(t *testing.T) {
	prop := func(m, r float64) bool {
		slope := 0.5 + math.Abs(math.Mod(m, 10)) // positive slope
		root := math.Mod(r, 100)
		f := func(x float64) float64 { return slope * (x - root) }
		a, b := root-13, root+17
		x1, err1 := Bisect(f, a, b, 1e-12)
		x2, err2 := Brent(f, a, b, 1e-13)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(x1-root) < 1e-7 && math.Abs(x2-root) < 1e-7
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFindBracket(t *testing.T) {
	f := func(x float64) float64 { return x - 40 }
	a, b, err := FindBracket(f, 0, 1, -1e9, 1e9, 60)
	if err != nil {
		t.Fatalf("FindBracket: %v", err)
	}
	if !(f(a) <= 0 && f(b) >= 0) {
		t.Errorf("FindBracket returned non-bracket [%v, %v]", a, b)
	}
}

func TestFindBracketFails(t *testing.T) {
	f := func(x float64) float64 { return 1.0 }
	if _, _, err := FindBracket(f, 0, 1, -10, 10, 20); err != ErrNoBracket {
		t.Errorf("FindBracket err = %v, want ErrNoBracket", err)
	}
}
