package numeric

import "math"

// Simpson integrates f over [a, b] with adaptive Simpson quadrature to the
// given absolute tolerance. It is robust for the smooth, possibly sharply
// peaked densities that arise from transfer-time distributions.
func Simpson(f func(float64) float64, a, b, tol float64) (float64, error) {
	if !isFinite(a) || !isFinite(b) || a > b {
		return 0, ErrInvalidInterval
	}
	if a == b {
		return 0, nil
	}
	if tol <= 0 {
		tol = 1e-10
	}
	fa, fb := f(a), f(b)
	m := (a + b) / 2
	fm := f(m)
	whole := simpsonRule(a, b, fa, fm, fb)
	v, err := adaptiveSimpson(f, a, b, fa, fm, fb, whole, tol, 60)
	return v, err
}

func simpsonRule(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptiveSimpson(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int) (float64, error) {
	m := (a + b) / 2
	lm := (a + m) / 2
	rm := (m + b) / 2
	flm, frm := f(lm), f(rm)
	left := simpsonRule(a, m, fa, flm, fm)
	right := simpsonRule(m, b, fm, frm, fb)
	if math.IsNaN(left+right) || math.IsInf(left+right, 0) {
		// Non-finite panel values (overflowing integrands) cannot be
		// refined into a finite answer; report rather than recurse.
		return left + right, ErrMaxIter
	}
	if depth <= 0 {
		return left + right, ErrMaxIter
	}
	if math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15, nil
	}
	// Stop refining once the panel estimate is at floating-point noise:
	// further splits cannot improve it and would exhaust the depth budget
	// when callers request tolerances below the representable error.
	if math.Abs(left+right-whole) <= 4e-16*(math.Abs(left)+math.Abs(right)) {
		return left + right, nil
	}
	lv, lerr := adaptiveSimpson(f, a, m, fa, flm, fm, left, tol/2, depth-1)
	rv, rerr := adaptiveSimpson(f, m, b, fm, frm, fb, right, tol/2, depth-1)
	if lerr != nil {
		return lv + rv, lerr
	}
	return lv + rv, rerr
}

// gl20x and gl20w are the abscissae and weights of 20-point Gauss–Legendre
// quadrature on [-1, 1] (positive half; the rule is symmetric).
var gl20x = [10]float64{
	0.0765265211334973, 0.2277858511416451, 0.3737060887154196,
	0.5108670019508271, 0.6360536807265150, 0.7463319064601508,
	0.8391169718222188, 0.9122344282513259, 0.9639719272779138,
	0.9931285991850949,
}

var gl20w = [10]float64{
	0.1527533871307258, 0.1491729864726037, 0.1420961093183821,
	0.1316886384491766, 0.1181945319615184, 0.1019301198172404,
	0.0832767415767047, 0.0626720483341091, 0.0406014298003869,
	0.0176140071391521,
}

// GaussLegendre integrates f over [a, b] with a fixed 20-point
// Gauss–Legendre rule. It is exact for polynomials up to degree 39 and a
// good building block for composite rules over smooth integrands.
func GaussLegendre(f func(float64) float64, a, b float64) float64 {
	c := (a + b) / 2
	h := (b - a) / 2
	var sum float64
	for i := 0; i < 10; i++ {
		sum += gl20w[i] * (f(c+h*gl20x[i]) + f(c-h*gl20x[i]))
	}
	return sum * h
}

// CompositeGL integrates f over [a, b] by splitting the interval into n
// equal panels and applying 20-point Gauss–Legendre on each. Useful when
// the integrand has moderate variation across a wide interval.
func CompositeGL(f func(float64) float64, a, b float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	h := (b - a) / float64(n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += GaussLegendre(f, a+float64(i)*h, a+float64(i+1)*h)
	}
	return sum
}
