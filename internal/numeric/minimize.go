package numeric

import "math"

// invPhi is 1/phi, the inverse golden ratio, used by golden-section search.
var invPhi = (math.Sqrt(5) - 1) / 2

// GoldenSection minimizes f over [a, b] by golden-section search and returns
// the abscissa of the minimum. It requires only unimodality of f on [a, b]
// and converges linearly; use BrentMin for smooth functions. tol <= 0
// selects a default relative tolerance.
func GoldenSection(f func(float64) float64, a, b, tol float64) (float64, error) {
	if !isFinite(a) || !isFinite(b) || a >= b {
		return 0, ErrInvalidInterval
	}
	if tol <= 0 {
		tol = 1e-10
	}
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < 400; i++ {
		if b-a <= tol*(math.Abs(a)+math.Abs(b)+1e-300) || b-a <= tol*tol {
			break
		}
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	if f1 < f2 {
		return x1, nil
	}
	return x2, nil
}

// BrentMin minimizes f over [a, b] using Brent's parabolic-interpolation
// method with golden-section fallback. It returns the abscissa xmin and the
// value f(xmin). f should be unimodal on [a, b]; for smooth f convergence is
// superlinear.
func BrentMin(f func(float64) float64, a, b, tol float64) (xmin, fmin float64, err error) {
	if !isFinite(a) || !isFinite(b) || a >= b {
		return 0, 0, ErrInvalidInterval
	}
	if tol <= 0 {
		tol = 1e-10
	}
	const cgold = 0.3819660112501051
	var d, e float64
	x := a + cgold*(b-a)
	w, v := x, x
	fx := f(x)
	fw, fv := fx, fx
	for i := 0; i < 300; i++ {
		xm := (a + b) / 2
		tol1 := tol*math.Abs(x) + 1e-15
		tol2 := 2 * tol1
		if math.Abs(x-xm) <= tol2-(b-a)/2 {
			return x, fx, nil
		}
		useGolden := true
		if math.Abs(e) > tol1 {
			// Fit a parabola through (v,fv), (w,fw), (x,fx).
			r := (x - w) * (fx - fv)
			q := (x - v) * (fx - fw)
			p := (x-v)*q - (x-w)*r
			q = 2 * (q - r)
			if q > 0 {
				p = -p
			}
			q = math.Abs(q)
			etemp := e
			e = d
			if math.Abs(p) < math.Abs(q*etemp/2) && p > q*(a-x) && p < q*(b-x) {
				d = p / q
				u := x + d
				if u-a < tol2 || b-u < tol2 {
					d = math.Copysign(tol1, xm-x)
				}
				useGolden = false
			}
		}
		if useGolden {
			if x >= xm {
				e = a - x
			} else {
				e = b - x
			}
			d = cgold * e
		}
		var u float64
		if math.Abs(d) >= tol1 {
			u = x + d
		} else {
			u = x + math.Copysign(tol1, d)
		}
		fu := f(u)
		if fu <= fx {
			if u >= x {
				a = x
			} else {
				b = x
			}
			v, w, x = w, x, u
			fv, fw, fx = fw, fx, fu
		} else {
			if u < x {
				a = u
			} else {
				b = u
			}
			if fu <= fw || w == x {
				v, w = w, u
				fv, fw = fw, fu
			} else if fu <= fv || v == x || v == w {
				v, fv = u, fu
			}
		}
	}
	return x, fx, ErrMaxIter
}
