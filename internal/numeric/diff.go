package numeric

import "math"

// Derivative estimates f'(x) with a central difference using a step scaled
// to the magnitude of x. Accuracy is O(h²) with h ≈ cbrt(eps)·|x|.
func Derivative(f func(float64) float64, x float64) float64 {
	h := math.Cbrt(2.2e-16) * math.Max(math.Abs(x), 1e-8)
	// Make h exactly representable relative to x to reduce rounding error.
	xh := x + h
	h = xh - x
	return (f(x+h) - f(x-h)) / (2 * h)
}

// SecondDerivative estimates f”(x) with a central second difference.
func SecondDerivative(f func(float64) float64, x float64) float64 {
	h := math.Pow(2.2e-16, 0.25) * math.Max(math.Abs(x), 1e-6)
	xh := x + h
	h = xh - x
	return (f(x+h) - 2*f(x) + f(x-h)) / (h * h)
}
