package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGoldenSectionQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 3) * (x - 3) }
	x, err := GoldenSection(f, -10, 10, 1e-10)
	if err != nil {
		t.Fatalf("GoldenSection: %v", err)
	}
	if math.Abs(x-3) > 1e-6 {
		t.Errorf("GoldenSection min = %v, want 3", x)
	}
}

func TestBrentMinQuadratic(t *testing.T) {
	f := func(x float64) float64 { return 2*(x+1.5)*(x+1.5) + 7 }
	x, fx, err := BrentMin(f, -100, 100, 1e-12)
	if err != nil {
		t.Fatalf("BrentMin: %v", err)
	}
	if math.Abs(x+1.5) > 1e-6 {
		t.Errorf("BrentMin xmin = %v, want -1.5", x)
	}
	if math.Abs(fx-7) > 1e-9 {
		t.Errorf("BrentMin fmin = %v, want 7", fx)
	}
}

func TestBrentMinNonPolynomial(t *testing.T) {
	// min of x - log(x) is at x = 1.
	f := func(x float64) float64 { return x - math.Log(x) }
	x, _, err := BrentMin(f, 0.01, 10, 1e-12)
	if err != nil {
		t.Fatalf("BrentMin: %v", err)
	}
	if math.Abs(x-1) > 1e-6 {
		t.Errorf("BrentMin xmin = %v, want 1", x)
	}
}

func TestBrentMinEdgeMinimum(t *testing.T) {
	// Monotone increasing: the minimum is at the left endpoint.
	f := func(x float64) float64 { return x }
	x, _, err := BrentMin(f, 2, 5, 1e-10)
	if err != nil {
		t.Fatalf("BrentMin: %v", err)
	}
	if x > 2.001 {
		t.Errorf("BrentMin on monotone f returned %v, want ~2", x)
	}
}

func TestMinimizersInvalidInterval(t *testing.T) {
	f := func(x float64) float64 { return x * x }
	if _, err := GoldenSection(f, 1, 1, 0); err != ErrInvalidInterval {
		t.Errorf("GoldenSection err = %v, want ErrInvalidInterval", err)
	}
	if _, _, err := BrentMin(f, 2, 1, 0); err != ErrInvalidInterval {
		t.Errorf("BrentMin err = %v, want ErrInvalidInterval", err)
	}
}

// Property: both minimizers find the vertex of random upward parabolas.
func TestMinimizersAgreeOnParabolas(t *testing.T) {
	prop := func(c, k float64) bool {
		center := math.Mod(c, 50)
		curv := 0.1 + math.Abs(math.Mod(k, 10))
		f := func(x float64) float64 { return curv * (x - center) * (x - center) }
		a, b := center-23, center+31
		x1, err1 := GoldenSection(f, a, b, 1e-11)
		x2, _, err2 := BrentMin(f, a, b, 1e-11)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(x1-center) < 1e-4 && math.Abs(x2-center) < 1e-4
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
