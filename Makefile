# Tier-1 verification plus the race and benchmark passes, one target each.
# `make check` is what CI should run; `make bench` updates the
# BENCH_admission.json performance trajectory.

GO ?= go

.PHONY: all build vet test test-race bench check clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Runs the admission benchmark suite and appends the measurements
# (op, ns/op, allocs/op, git rev, date) to BENCH_admission.json.
bench:
	$(GO) run ./cmd/mzbench -v -out BENCH_admission.json

check: build vet test test-race

clean:
	$(GO) clean ./...
