# Tier-1 verification plus the race and benchmark passes, one target each.
# `make check` is what CI should run; `make bench` updates the
# BENCH_admission.json performance trajectory.

GO ?= go

.PHONY: all build vet test test-race bench smoke faults check clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Runs the admission benchmark suite and appends the measurements
# (op, ns/op, allocs/op, git rev, date, solver telemetry) to
# BENCH_admission.json; the schema is documented in BENCH_SCHEMA.md.
bench:
	$(GO) run ./cmd/mzbench -v -out BENCH_admission.json

# Runs mzserver with -listen and curls the live telemetry endpoints.
smoke:
	sh scripts/smoke.sh

# Drives mzserver through a scripted disk slowdown with graceful
# degradation on and asserts the degrade/shed/restore lifecycle end to end.
faults:
	sh scripts/faults.sh

check: build vet test test-race

clean:
	$(GO) clean ./...
