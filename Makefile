# Tier-1 verification plus the race and benchmark passes, one target each.
# `make check` is what CI should run; `make bench` updates the
# BENCH_admission.json performance trajectory.

GO ?= go

.PHONY: all build vet test test-race bench bench-quick smoke faults check clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# -shuffle=on randomizes test order so accidental inter-test state
# dependencies surface under the same pass that catches data races.
test-race:
	$(GO) test -race -shuffle=on ./...

# Runs the admission benchmark suite and appends the measurements
# (op, ns/op, allocs/op, git rev, date, solver telemetry) to
# BENCH_admission.json; the schema is documented in BENCH_SCHEMA.md.
bench:
	$(GO) run ./cmd/mzbench -v -out BENCH_admission.json

# CI smoke for the round-path hot loops: runs the ClusterAdmit (with
# migration enabled), ClusterMigrate, SLO-audit, JournalAppend, and
# HistorySample benchmarks, gates each on its latency/0-alloc budget, and
# validates the existing BENCH_admission.json trajectory against
# BENCH_SCHEMA.md without appending a run.
bench-quick:
	$(GO) run ./cmd/mzbench -quick -v -out BENCH_admission.json

# Runs mzserver with -listen and curls the live telemetry endpoints.
smoke:
	sh scripts/smoke.sh

# Drives mzserver through a scripted disk slowdown with graceful
# degradation on and asserts the degrade/shed/restore lifecycle end to end.
faults:
	sh scripts/faults.sh

check: build vet test test-race

clean:
	$(GO) clean ./...
