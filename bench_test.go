// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md's experiment index) plus micro-benchmarks of the hot
// paths. Each BenchmarkTableX/BenchmarkFigureX measures one full
// regeneration of that artifact; simulated variants use scaled trial
// counts so an iteration stays in the tens of milliseconds. Run the mzexp
// command for full paper-scale regeneration.
package mzqos_test

import (
	"io"
	"testing"

	"mzqos"
	"mzqos/internal/benchcases"
	"mzqos/internal/experiments"
	"mzqos/internal/model"
	"mzqos/internal/sim"
)

func newPaperModel(b *testing.B) *mzqos.Model {
	b.Helper()
	m, err := mzqos.NewModel(mzqos.ModelConfig{
		Disk:        mzqos.QuantumViking21(),
		Sizes:       mzqos.PaperSizes(),
		RoundLength: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchOpts() experiments.Options {
	o := experiments.QuickOptions()
	o.Figure1Trials = 2000
	o.Table2Runs = 4
	return o
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Run(id, opts)
		if err != nil {
			b.Fatal(err)
		}
		tbl.Render(io.Discard)
	}
}

// --- Tables and figures ---

// BenchmarkTable1 regenerates the disk/data characteristics table.
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkExampleSingleZone regenerates the §3.1 worked example (E1):
// Chernoff bounds on a conventional disk.
func BenchmarkExampleSingleZone(b *testing.B) { runExperiment(b, "e1") }

// BenchmarkExampleMultiZone regenerates the §3.2 worked example (E2):
// Chernoff bounds with the zoned transfer-rate model.
func BenchmarkExampleMultiZone(b *testing.B) { runExperiment(b, "e2") }

// BenchmarkExampleGlitch regenerates the §3.3 worked example (E3): the
// per-stream glitch-count bound.
func BenchmarkExampleGlitch(b *testing.B) { runExperiment(b, "e3") }

// BenchmarkFigure1Analytic computes the analytic b_late series of Figure 1.
func BenchmarkFigure1Analytic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := newPaperModel(b) // fresh model: no memoized bounds
		for n := 20; n <= 32; n++ {
			if _, err := m.LateBound(n); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure1Simulated measures the simulated p_late series of
// Figure 1 at a fixed 2000 rounds per N.
func BenchmarkFigure1Simulated(b *testing.B) { runExperiment(b, "figure1") }

// BenchmarkTable2Analytic computes the analytic p_error column of Table 2.
func BenchmarkTable2Analytic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := newPaperModel(b)
		for n := 28; n <= 32; n++ {
			if _, err := m.StreamErrorBound(n, 1200, 12); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable2Simulated regenerates Table 2 with scaled-down stream
// histories (the full paper-scale run is `mzexp -run table2`).
func BenchmarkTable2Simulated(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkWorstCase regenerates the deterministic-baseline comparison
// (eq. 4.1).
func BenchmarkWorstCase(b *testing.B) { runExperiment(b, "worstcase") }

// --- Ablations ---

// BenchmarkAblationBounds compares Chernoff/Chebyshev/CLT machinery (A1).
func BenchmarkAblationBounds(b *testing.B) { runExperiment(b, "ablation-bounds") }

// BenchmarkAblationScan compares SCAN vs independent seeks (A2).
func BenchmarkAblationScan(b *testing.B) { runExperiment(b, "ablation-scan") }

// BenchmarkAblationSizeDist swaps the fragment-size law (A3).
func BenchmarkAblationSizeDist(b *testing.B) { runExperiment(b, "ablation-sizedist") }

// BenchmarkAblationZones compares zoning-aware vs zoning-blind models (A4).
func BenchmarkAblationZones(b *testing.B) { runExperiment(b, "ablation-zones") }

// BenchmarkAblationApprox measures the Gamma-approximation error report (A5).
func BenchmarkAblationApprox(b *testing.B) { runExperiment(b, "ablation-approx") }

// BenchmarkAblationExactLST compares the Gamma-matched and exact
// zone-mixture transforms (A6).
func BenchmarkAblationExactLST(b *testing.B) { runExperiment(b, "ablation-exactlst") }

// BenchmarkAblationConservatism decomposes bound conservatism via
// transform inversion (A7).
func BenchmarkAblationConservatism(b *testing.B) { runExperiment(b, "ablation-conservatism") }

// --- Extensions (the paper's §6 future work and §2.2 placement outlook) ---

// BenchmarkExtMixed regenerates the mixed-workload trade-off table.
func BenchmarkExtMixed(b *testing.B) { runExperiment(b, "ext-mixed") }

// BenchmarkExtBuffers regenerates the client-buffering table.
func BenchmarkExtBuffers(b *testing.B) { runExperiment(b, "ext-buffers") }

// BenchmarkExtPlacement regenerates the zone-aware placement table.
func BenchmarkExtPlacement(b *testing.B) { runExperiment(b, "ext-placement") }

// BenchmarkExtGSS regenerates the Group Sweeping Scheduling trade-off.
func BenchmarkExtGSS(b *testing.B) { runExperiment(b, "ext-gss") }

// BenchmarkDiagPositionBias regenerates the SCAN position-bias diagnostic.
func BenchmarkDiagPositionBias(b *testing.B) { runExperiment(b, "diag-positionbias") }

// --- The admission-path suite (shared with cmd/mzbench) ---

// BenchmarkAdmission runs the suite cmd/mzbench records into
// BENCH_admission.json: optimized admission paths (warm-started solves,
// prefix glitch sums, bisection searches, parallel table builds) raced
// against the retained seed implementation in the same binary. Run
// `go run ./cmd/mzbench` (or `make bench`) to persist the results.
func BenchmarkAdmission(b *testing.B) {
	for _, c := range benchcases.Suite() {
		b.Run(c.Name, c.Bench)
	}
}

// --- Micro-benchmarks of the hot paths ---

// BenchmarkChernoffLateBound measures one uncached Chernoff optimization
// (the admission-control inner loop).
func BenchmarkChernoffLateBound(b *testing.B) {
	cfg := mzqos.ModelConfig{
		Disk:        mzqos.QuantumViking21(),
		Sizes:       mzqos.PaperSizes(),
		RoundLength: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := mzqos.NewModel(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.LateBound(26); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdmissionTable measures building the §5 lookup table.
func BenchmarkAdmissionTable(b *testing.B) {
	specs := []mzqos.Guarantee{
		{Threshold: 0.001},
		{Threshold: 0.01},
		{Threshold: 0.05},
		{Rounds: 1200, Glitches: 12, Threshold: 0.01},
	}
	for i := 0; i < b.N; i++ {
		m := newPaperModel(b)
		if _, err := model.BuildTable(m, specs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedRound measures one simulated SCAN round at N=26
// (amortized over a 1000-round batch).
func BenchmarkSimulatedRound(b *testing.B) {
	cfg := sim.Config{
		Disk:        mzqos.QuantumViking21(),
		Sizes:       mzqos.PaperSizes(),
		RoundLength: 1,
		N:           26,
		Workers:     1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.EstimatePLate(cfg, 1000, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerRound measures one full server round: 4 disks at the
// admitted limit.
func BenchmarkServerRound(b *testing.B) {
	srv, err := mzqos.NewServer(mzqos.ServerConfig{
		Disk:        mzqos.QuantumViking21(),
		NumDisks:    4,
		RoundLength: 1,
		Sizes:       mzqos.PaperSizes(),
		Guarantee:   mzqos.Guarantee{Threshold: 0.01},
		Seed:        1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.AddSyntheticObject("v", 1<<20); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < srv.Capacity(); i++ {
		if _, _, err := srv.Open("v"); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Step()
	}
}

// BenchmarkTraceGeneration measures synthesizing one minute of MPEG-like
// VBR frames.
func BenchmarkTraceGeneration(b *testing.B) {
	cfg := mzqos.DefaultTraceConfig()
	rng := mzqos.NewRand(1, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frames, err := mzqos.GenerateTrace(cfg, 60, rng)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mzqos.FragmentTrace(frames, cfg.FrameRate, 1); err != nil {
			b.Fatal(err)
		}
	}
}
