// Package mzqos provides stochastic service guarantees for continuous data
// on multi-zone disks, reproducing Nerjes, Muth & Weikum (PODS 1997).
//
// A continuous-media server schedules disk service in rounds; mzqos
// predicts, analytically, the probability that a round overruns
// (p_late), the probability that a stream sees a glitch in one round, and
// the probability that a stream of M rounds suffers at least g glitches
// (p_error). From these it derives the maximum admissible number of
// concurrent streams per disk under a stochastic quality-of-service
// guarantee, accounting for SCAN disk scheduling, variable-bit-rate
// fragment sizes, and the zone-dependent transfer rates of multi-zone
// disks.
//
// Quick start:
//
//	m, err := mzqos.NewModel(mzqos.ModelConfig{
//		Disk:        mzqos.QuantumViking21(),
//		Sizes:       mzqos.MustGammaSizes(200*mzqos.KB, 100*mzqos.KB),
//		RoundLength: 1.0,
//	})
//	nmax, err := m.NMaxFor(mzqos.Guarantee{Threshold: 0.01})
//
// The subpackages expose, via this facade:
//
//   - the analytic model and admission tables (internal/model),
//   - multi-zone disk geometry and profiles (internal/disk),
//   - VBR workload models and an MPEG-like trace generator
//     (internal/workload),
//   - a detailed Monte-Carlo simulator for validation (internal/sim),
//   - a runnable striped server with admission control (internal/server),
//   - a sharded cluster coordinator with lock-free admission
//     (internal/cluster) over the shared round-engine contract
//     (internal/engine).
package mzqos

import (
	"math/rand/v2"

	"mzqos/internal/cluster"
	"mzqos/internal/disk"
	"mzqos/internal/dist"
	"mzqos/internal/engine"
	"mzqos/internal/fault"
	"mzqos/internal/model"
	"mzqos/internal/server"
	"mzqos/internal/sim"
	"mzqos/internal/telemetry"
	"mzqos/internal/trace"
	"mzqos/internal/workload"
)

// KB is the paper's size unit (decimal kilobytes).
const KB = workload.KB

// Core model types.
type (
	// Model is the paper's analytic service-quality model (§3). It is
	// safe for unlimited concurrent use: memoized bound reads are
	// lock-free snapshots and admission searches on a shared Model return
	// values bit-identical to a serial run.
	Model = model.Model
	// ModelConfig configures a Model.
	ModelConfig = model.Config
	// Guarantee is a stochastic QoS target (per-round or per-stream).
	Guarantee = model.Guarantee
	// Table is a precomputed admission lookup table (§5).
	Table = model.Table
	// TableEntry is one admission table row.
	TableEntry = model.TableEntry
	// WorstCaseSpec parameterizes the deterministic baseline (eq. 4.1).
	WorstCaseSpec = model.WorstCaseSpec
	// ApproxErrorReport quantifies the Gamma approximation error (§3.2).
	ApproxErrorReport = model.ApproxErrorReport
)

// Disk geometry types.
type (
	// Geometry describes a (multi-zone) disk drive.
	Geometry = disk.Geometry
	// Zone is one group of equal-capacity tracks.
	Zone = disk.Zone
	// SeekCurve is the two-regime seek-time function.
	SeekCurve = disk.SeekCurve
)

// Workload types.
type (
	// SizeModel is a named fragment-size distribution.
	SizeModel = workload.SizeModel
	// TraceConfig parameterizes the synthetic MPEG-like VBR generator.
	TraceConfig = workload.TraceConfig
)

// Simulation types.
type (
	// SimConfig configures the detailed round simulator (§4).
	SimConfig = sim.Config
	// Estimate is a Monte-Carlo estimate with a Wilson interval.
	Estimate = sim.Estimate
)

// Server types.
type (
	// Server is a striped continuous-media server with admission control.
	Server = server.Server
	// ServerConfig configures a Server.
	ServerConfig = server.Config
	// StreamID identifies an open stream.
	StreamID = server.StreamID
	// StreamStats reports the service quality one stream experienced.
	StreamStats = server.StreamStats
	// RunSummary aggregates a multi-round server execution.
	RunSummary = server.RunSummary
)

// Cluster types (see README "Cluster serving" and DESIGN.md §7).
type (
	// Engine is the round-engine contract a cluster shard satisfies;
	// both *Server and the statistical sim engine implement it.
	Engine = engine.Engine
	// EngineHealth is one shard's cached health row: active streams,
	// per-disk limit, capacity, round, degraded flag.
	EngineHealth = engine.Health
	// Cluster coordinates S shards: placement, routing, and a lock-free
	// cluster-wide admission hot path over cached per-shard N_max views.
	Cluster = cluster.Coordinator
	// ClusterConfig configures a Cluster.
	ClusterConfig = cluster.Config
	// ClusterTicket is a reserved-but-unmaterialized admission slot.
	ClusterTicket = cluster.Ticket
	// ClusterHandle identifies an open stream by (shard, stream).
	ClusterHandle = cluster.Handle
	// ClusterStatus is the cluster-wide health + placement summary the
	// mzserver /cluster endpoint serves.
	ClusterStatus = cluster.Status
	// ClusterAdmissionRecord is one retained admission, naming its shard.
	ClusterAdmissionRecord = cluster.AdmissionRecord
	// ClusterMigrationStats counts eviction-to-migration and failover
	// outcomes (see README "Cluster serving" and DESIGN.md §9).
	ClusterMigrationStats = cluster.MigrationStats
	// StreamState is one stream's resumable state — the payload of the
	// export/import contract cross-shard migration rides on.
	StreamState = engine.StreamState
)

// Routing policies for ClusterConfig.Route.
const (
	RouteRoundRobin  = cluster.RouteRoundRobin
	RouteLeastLoaded = cluster.RouteLeastLoaded
	RouteAffinity    = cluster.RouteAffinity
)

// NewCluster builds a coordinator over pre-built shard engines.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// NewSimEngine builds a statistical shard engine: the detailed
// simulator's service-time law behind the Engine contract, cheap enough
// to fan out into large simulated fleets.
func NewSimEngine(cfg SimEngineConfig) (*SimEngine, error) { return sim.NewEngine(cfg) }

// SimEngine types (simulated shards for cluster experiments).
type (
	// SimEngine is the simulator-backed Engine implementation.
	SimEngine = sim.Engine
	// SimEngineConfig configures a SimEngine.
	SimEngineConfig = sim.EngineConfig
)

// Fault-injection and degraded-mode types (see README "Fault injection
// & degraded mode").
type (
	// FaultPlan is a deterministic, seedable schedule of service faults;
	// the same plan drives a server and a simulator to the identical
	// fault timeline.
	FaultPlan = fault.Plan
	// Fault is one scheduled perturbation over a round interval.
	Fault = fault.Fault
	// FaultKind selects the perturbation (latency, rate, errors, fail).
	FaultKind = fault.Kind
	// FaultEffects is the combined perturbation of one disk in one round.
	FaultEffects = fault.Effects
	// FaultInjector resolves a plan to per-(disk, round) effects.
	FaultInjector = fault.Injector
	// DegradeConfig controls the server's reaction to sustained faults.
	DegradeConfig = server.DegradeConfig
	// ShedPolicy selects which streams to evict when the degraded limit
	// drops below an offset class's occupancy.
	ShedPolicy = server.ShedPolicy
)

// Fault kinds.
const (
	FaultLatency   = fault.Latency
	FaultZoneRate  = fault.ZoneRate
	FaultReadError = fault.ReadError
	FaultFailure   = fault.Failure
	// FaultAllDisks as a Fault.Disk targets every disk in the array.
	FaultAllDisks = fault.AllDisks
)

// NewFaultInjector validates a plan against an array of `disks` drives
// (0 skips the width check) and returns its injector.
func NewFaultInjector(plan FaultPlan, disks int) (*FaultInjector, error) {
	return fault.NewInjector(plan, disks)
}

// ParseFaultPlan parses the compact command-line fault-plan syntax, e.g.
// "latency:disk=0,from=50,until=250,factor=2;errors:disk=all,from=0,prob=0.01,retries=2".
func ParseFaultPlan(spec string, seed uint64) (FaultPlan, error) {
	return fault.ParsePlan(spec, seed)
}

// ShedNewest is the default shedding policy: evict the most recently
// admitted streams first. ShedNone disables eviction (degraded limits
// only close admission).
var (
	ShedNewest ShedPolicy = server.ShedNewest
	ShedNone   ShedPolicy = server.ShedNone
)

// SimReplayRounds plays consecutive rounds through a fault plan's
// timeline on the simulator (SimConfig.Faults), mirroring the schedule a
// server under the same plan experiences.
func SimReplayRounds(cfg SimConfig, rounds int, seed uint64) ([]sim.RoundOutcome, error) {
	return sim.ReplayRounds(cfg, rounds, seed)
}

// Observability types (see README "Observability" and internal/telemetry).
type (
	// ServerTelemetry is a running server's live metrics surface.
	ServerTelemetry = server.Telemetry
	// TightnessReport compares measured service quality against the
	// analytic bounds, server-wide; DiskTightness is one disk's row.
	TightnessReport = server.TightnessReport
	DiskTightness   = server.DiskTightness
	// MetricsSnapshot is an immutable copy of a metric registry.
	MetricsSnapshot = telemetry.Snapshot
	// RoundHistogram is the fixed-bucket histogram the round-time series
	// use; hand one to SimConfig.RoundTimes or MixedConfig.RoundTimes to
	// collect comparable distributions from the simulators.
	RoundHistogram = telemetry.Histogram
	// SweepEvent is one recorded SCAN sweep with its per-phase breakdown.
	SweepEvent = telemetry.RoundEvent
	// SweepPhaseTotals accumulates phase seconds over recorded sweeps.
	SweepPhaseTotals = telemetry.PhaseTotals
	// SolverTelemetry reports the model package's process-wide solver
	// counters (bound-chain cache hits, warm/cold Chernoff solves).
	SolverTelemetry = model.TelemetrySnapshot
)

// Round-level tracing and admission explainability (see README
// "Round-level tracing & the flight recorder" and DESIGN.md §6). The
// MPEG trace generator's TraceConfig is unrelated; these names carry the
// Trace/Span vocabulary of internal/trace.
type (
	// FlightRecorder retains the last R sweep spans in a fixed ring and
	// latches a snapshot on trigger conditions; Server.Trace() returns
	// the server's own, configured via ServerConfig.Trace.
	FlightRecorder = trace.Recorder
	// RoundTraceConfig sizes a FlightRecorder (ServerConfig.Trace).
	RoundTraceConfig = trace.Config
	// RoundSpan is one disk's SCAN sweep with per-request child events.
	RoundSpan = trace.RoundSpan
	// RequestTraceEvent is one request's realized service record: the
	// drawn seek, rotational delay, zone, transfer, retries and outcome.
	RequestTraceEvent = trace.RequestEvent
	// TraceSnapshot is a frozen flight-recorder history with its trigger.
	TraceSnapshot = trace.Snapshot
	// TraceStats is a recorder's lifetime accounting.
	TraceStats = trace.Stats
	// ChromeTraceFile is the Perfetto-loadable trace-event export.
	ChromeTraceFile = trace.ChromeFile
	// AdmissionStatus is the server's full admission explainability
	// report: per-disk explanations, class occupancy, rejections.
	AdmissionStatus = server.AdmissionStatus
	// AdmissionExplanation records one N_max derivation's binding
	// constraint: the first inadmissible k, which bound binds, the
	// solved Chernoff θ, and the slack to the guarantee threshold.
	AdmissionExplanation = model.AdmissionExplanation
	// AdmissionDecision is one logged Admit/NMax evaluation.
	AdmissionDecision = model.AdmissionDecision
	// RejectionEvent is one admission rejection with its cause.
	RejectionEvent = server.RejectionEvent
)

// Rejection reasons recorded in RejectionEvent.Reason.
const (
	RejectOverload    = server.RejectOverload
	RejectClassesFull = server.RejectClassesFull
)

// NewFlightRecorder builds a standalone recorder, e.g. to hand to
// SimConfig.Trace for traced replays.
func NewFlightRecorder(cfg RoundTraceConfig) *FlightRecorder { return trace.NewRecorder(cfg) }

// ChromeTrace renders spans as Chrome trace-event JSON (Perfetto or
// chrome://tracing), one round length of virtual time per round.
func ChromeTrace(spans []RoundSpan, roundLength float64) ChromeTraceFile {
	return trace.ChromeTrace(spans, roundLength)
}

// RecentAdmissionDecisions returns the process-wide ring of logged
// admission evaluations, oldest first.
func RecentAdmissionDecisions() []AdmissionDecision { return model.RecentDecisions() }

// NewRoundTimeHistogram builds a histogram whose buckets are log-spaced
// around the round length t, with t itself an exact boundary so the
// deadline tail P[T_N > t] is exactly resolvable.
func NewRoundTimeHistogram(t float64) (*RoundHistogram, error) {
	return telemetry.NewRoundTimeHistogram(t)
}

// SolverStats returns the process-wide solver counters.
func SolverStats() SolverTelemetry { return model.Telemetry() }

// Errors surfaced through the facade.
var (
	// ErrRejected is returned when admission control turns a stream away.
	ErrRejected = server.ErrRejected
	// ErrOverload means the guarantee is unattainable even for one stream.
	ErrOverload = model.ErrOverload
)

// NewModel builds the analytic model.
func NewModel(cfg ModelConfig) (*Model, error) { return model.New(cfg) }

// BuildTable precomputes an admission lookup table (§5).
func BuildTable(m *Model, specs []Guarantee) (*Table, error) { return model.BuildTable(m, specs) }

// NewServer builds a striped continuous-media server.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// QuantumViking21 returns the Table-1 disk profile.
func QuantumViking21() *Geometry { return disk.QuantumViking21() }

// Synthetic2000 returns a year-2000-class 10k RPM synthetic profile for
// drive-generation sweeps.
func Synthetic2000() *Geometry { return disk.Synthetic2000() }

// NewGeometry builds a custom multi-zone geometry.
func NewGeometry(name string, rotationTime float64, zones []Zone, seek SeekCurve) (*Geometry, error) {
	return disk.New(name, rotationTime, zones, seek)
}

// SingleZoneGeometry builds a conventional one-zone disk.
func SingleZoneGeometry(name string, cylinders int, rotationTime, trackCapacity float64, seek SeekCurve) (*Geometry, error) {
	return disk.SingleZone(name, cylinders, rotationTime, trackCapacity, seek)
}

// GammaSizes returns the paper's Gamma fragment-size model (bytes).
func GammaSizes(mean, sd float64) (SizeModel, error) { return workload.GammaSizes(mean, sd) }

// MustGammaSizes is GammaSizes that panics on invalid parameters, for
// static configuration.
func MustGammaSizes(mean, sd float64) SizeModel {
	m, err := workload.GammaSizes(mean, sd)
	if err != nil {
		panic(err)
	}
	return m
}

// LognormalSizes returns a Lognormal fragment-size model.
func LognormalSizes(mean, sd float64) (SizeModel, error) { return workload.LognormalSizes(mean, sd) }

// ParetoSizes returns a Pareto fragment-size model.
func ParetoSizes(mean, sd float64) (SizeModel, error) { return workload.ParetoSizes(mean, sd) }

// PaperSizes returns the Table-1 workload: Gamma(200 KB, 100 KB).
func PaperSizes() SizeModel { return workload.PaperSizes() }

// SizesFromSample fits a size model to measured fragment sizes.
func SizesFromSample(name string, sizes []float64) (SizeModel, error) {
	return workload.FromSample(name, sizes)
}

// DefaultTraceConfig returns an MPEG-2-like VBR trace configuration.
func DefaultTraceConfig() TraceConfig { return workload.DefaultTraceConfig() }

// GenerateTrace produces per-frame sizes for a synthetic VBR clip.
func GenerateTrace(cfg TraceConfig, duration float64, rng *rand.Rand) ([]float64, error) {
	return workload.GenerateTrace(cfg, duration, rng)
}

// FragmentTrace groups per-frame sizes into constant-display-time fragments.
func FragmentTrace(frames []float64, frameRate, displayTime float64) ([]float64, error) {
	return workload.Fragment(frames, frameRate, displayTime)
}

// SaveTraceFile writes a trace (frame or fragment sizes) to a plain-text
// trace file.
func SaveTraceFile(path string, sizes []float64) error {
	return workload.SaveTraceFile(path, sizes)
}

// LoadTraceFile reads a trace written by SaveTraceFile.
func LoadTraceFile(path string) ([]float64, error) {
	return workload.LoadTraceFile(path)
}

// NewRand returns a reproducible random source.
func NewRand(seed1, seed2 uint64) *rand.Rand { return dist.NewRand(seed1, seed2) }

// Zipf models clip popularity over a catalog of n items.
type Zipf = workload.Zipf

// NewZipf returns a Zipf popularity law over n items with exponent s.
func NewZipf(n int, s float64) (*Zipf, error) { return workload.NewZipf(n, s) }

// PlanRoundLength finds the smallest round length in [tLo, tHi] that
// admits targetN streams of the given bandwidth at threshold delta
// (fragment sizes scale with the round length at constant bandwidth).
func PlanRoundLength(g *Geometry, meanRate, cv, delta float64, targetN int, tLo, tHi float64) (float64, error) {
	return model.PlanRoundLength(g, meanRate, cv, delta, targetN, tLo, tHi)
}

// GSSResult describes a Group Sweeping Scheduling configuration (see
// Model.GSS, Model.GSSNMax, Model.GSSSweep).
type GSSResult = model.GSSResult

// SimulatePLate estimates p_late by detailed simulation (Figure 1).
func SimulatePLate(cfg SimConfig, trials int, seed uint64) (Estimate, error) {
	return sim.EstimatePLate(cfg, trials, seed)
}

// SimulatePError estimates p_error by detailed simulation (Table 2).
func SimulatePError(cfg SimConfig, rounds, glitches, runs int, seed uint64) (Estimate, error) {
	return sim.EstimatePError(cfg, rounds, glitches, runs, seed)
}
