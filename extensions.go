package mzqos

import (
	"mzqos/internal/buffer"
	"mzqos/internal/disk"
	"mzqos/internal/mixed"
	"mzqos/internal/model"
)

// Extension types: mixed workloads (§6), client buffering (§6), and
// zone-aware placement (§2.2 outlook).
type (
	// MixedConfig configures one disk of a mixed continuous/discrete
	// workload server.
	MixedConfig = mixed.Config
	// MixedModel couples continuous guarantees with discrete-response
	// estimates.
	MixedModel = mixed.Model
	// MixedSimResult summarizes a mixed-workload simulation.
	MixedSimResult = mixed.SimResult
	// TradeOffPoint is one row of the reserve sweep.
	TradeOffPoint = mixed.TradeOffPoint

	// BufferSimConfig configures the buffered-client simulator.
	BufferSimConfig = buffer.SimConfig
	// BufferSimResult reports buffered playback quality.
	BufferSimResult = buffer.SimResult

	// AccessProfile is a per-zone request-frequency profile.
	AccessProfile = disk.AccessProfile
)

// NewMixedModel builds the mixed-workload model (§6 extension): the
// continuous class is admitted against the round shortened by the reserve
// while the reserved tail serves discrete requests.
func NewMixedModel(cfg MixedConfig) (*MixedModel, error) { return mixed.New(cfg) }

// MixedTradeOff sweeps the reserve fraction, reporting continuous
// admission limits and discrete response estimates.
func MixedTradeOff(cfg MixedConfig, reserves []float64, delta float64) ([]TradeOffPoint, error) {
	return mixed.TradeOff(cfg, reserves, delta)
}

// SimulateMixed plays a mixed-workload schedule: continuous SCAN sweep
// first, then FCFS discrete service in the reserved tail of each round.
func SimulateMixed(cfg MixedConfig, n, rounds int, seed uint64) (MixedSimResult, error) {
	return mixed.Simulate(cfg, n, rounds, seed)
}

// VisibleGlitchBound bounds the per-round probability that a client with
// the given rounds of buffer slack perceives a glitch (§6 extension;
// slack 0 recovers the paper's b_glitch).
func VisibleGlitchBound(m *Model, n, slackRounds int) (float64, error) {
	return buffer.VisibleGlitchBound(m, n, slackRounds)
}

// NMaxBuffered returns the admission limit for buffered clients at the
// given visible-glitch threshold, ceilinged by sweep stability.
func NMaxBuffered(m *Model, slackRounds int, delta float64) (int, error) {
	return buffer.NMaxBuffered(m, slackRounds, delta)
}

// SimulateBuffered plays rounds with exact overrun carry-over and
// slack-shifted display deadlines.
func SimulateBuffered(cfg BufferSimConfig, rounds int, seed uint64) (BufferSimResult, error) {
	return buffer.Simulate(cfg, rounds, seed)
}

// ClientBufferBytes returns the client memory for s rounds of slack,
// including the minimum double buffer.
func ClientBufferBytes(meanFragment float64, slackRounds int) float64 {
	return buffer.ClientBufferBytes(meanFragment, slackRounds)
}

// UniformAccess returns the paper's uniform-over-sectors placement
// profile for g.
func UniformAccess(g *Geometry) AccessProfile { return disk.UniformAccess(g) }

// SkewedAccess returns a profile with access mass shifted toward fast
// outer zones (positive skew) or slow inner zones (negative skew).
func SkewedAccess(g *Geometry, skew float64) AccessProfile { return disk.SkewedAccess(g, skew) }

// OrganPipeAccess returns a generalized organ-pipe profile peaked at
// fraction center01 of the cylinder range.
func OrganPipeAccess(g *Geometry, center01, concentration float64) AccessProfile {
	return disk.OrganPipeAccess(g, center01, concentration)
}

// TransferExactMixture selects the exact zone-mixture transform instead of
// the paper's Gamma matching (set ModelConfig.Mode).
const TransferExactMixture = model.TransferExactMixture

// TransferGammaApprox is the paper's Gamma moment-matching transform mode.
const TransferGammaApprox = model.TransferGammaApprox
